package rng

import (
	"fmt"
	"math"
	"sort"
)

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, i.e. a sample from the geometric
// distribution on {0, 1, 2, ...}. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("rng: Geometric with p = %v out of (0, 1]", p))
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)) with U in (0, 1).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log1p(-p))
}

// Exp returns an exponentially distributed sample with rate lambda > 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: Exp with lambda = %v <= 0", lambda))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}

// Pareto returns a continuous bounded Pareto sample on [lo, hi] with tail
// exponent k > 1 (density proportional to x^(-k)). Inversion on the
// truncated CDF keeps the sample exact.
func (r *RNG) Pareto(k, lo, hi float64) float64 {
	if !(k > 1) || !(lo > 0) || !(hi >= lo) {
		panic(fmt.Sprintf("rng: Pareto with invalid k=%v lo=%v hi=%v", k, lo, hi))
	}
	a := k - 1 // CCDF exponent
	u := r.Float64()
	la := math.Pow(lo, -a)
	ha := math.Pow(hi, -a)
	return math.Pow(la-u*(la-ha), -1/a)
}

// PowerLaw is a sampler for a discrete bounded power law
// P(X = d) ∝ d^(-k) on the integer range [Min, Max].
//
// It precomputes the cumulative distribution once (O(Max-Min) space) and
// samples by binary search in O(log(Max-Min)) time, so the per-sample
// cost is independent of the tail mass. Construct with NewPowerLaw.
type PowerLaw struct {
	k    float64
	min  int
	max  int
	cdf  []float64 // cdf[i] = P(X <= min+i)
	mean float64
}

// NewPowerLaw builds a discrete bounded power-law sampler with exponent
// k > 1 on [min, max]. It returns an error when the range is empty or
// the exponent is not in the supported domain.
func NewPowerLaw(k float64, min, max int) (*PowerLaw, error) {
	if min < 1 {
		return nil, fmt.Errorf("rng: power law min %d < 1", min)
	}
	if max < min {
		return nil, fmt.Errorf("rng: power law range [%d, %d] empty", min, max)
	}
	if !(k > 1) {
		return nil, fmt.Errorf("rng: power law exponent %v must exceed 1", k)
	}
	n := max - min + 1
	cdf := make([]float64, n)
	total := 0.0
	mean := 0.0
	for i := 0; i < n; i++ {
		d := float64(min + i)
		w := math.Pow(d, -k)
		total += w
		mean += d * w
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against accumulated rounding
	return &PowerLaw{k: k, min: min, max: max, cdf: cdf, mean: mean / total}, nil
}

// Sample draws one value from the distribution.
func (p *PowerLaw) Sample(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.cdf) {
		i = len(p.cdf) - 1
	}
	// SearchFloat64s returns the first index with cdf[i] >= u, which is
	// exactly inversion sampling for a right-continuous CDF.
	return p.min + i
}

// Mean returns the exact mean of the bounded distribution.
func (p *PowerLaw) Mean() float64 { return p.mean }

// Exponent returns the tail exponent k.
func (p *PowerLaw) Exponent() float64 { return p.k }

// Bounds returns the inclusive support [min, max].
func (p *PowerLaw) Bounds() (min, max int) { return p.min, p.max }

// Discrete is a finite distribution over {0, ..., n-1} sampled by
// inversion on a precomputed CDF. Weights need not be normalized.
type Discrete struct {
	cdf []float64
}

// NewDiscrete builds a sampler from non-negative weights. At least one
// weight must be positive.
func NewDiscrete(weights []float64) (*Discrete, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: discrete distribution needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: discrete weight %d is %v; weights must be finite and non-negative", i, w)
		}
		total += w
		cdf[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: discrete weights sum to %v; need a positive total", total)
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[len(cdf)-1] = 1
	return &Discrete{cdf: cdf}, nil
}

// Sample draws an index with probability proportional to its weight.
func (d *Discrete) Sample(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	return i
}

// Len returns the support size.
func (d *Discrete) Len() int { return len(d.cdf) }

// Prob returns the probability of index i.
func (d *Discrete) Prob(i int) float64 {
	if i < 0 || i >= len(d.cdf) {
		return 0
	}
	if i == 0 {
		return d.cdf[0]
	}
	return d.cdf[i] - d.cdf[i-1]
}
