package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scalefree/internal/engine"
)

// CoordJob is one experiment's plan as the coordinator schedules it:
// the job identity (experiment ID + plan fingerprint) and the full
// positional trial list. Workers re-plan the same experiment locally
// and the fingerprint guarantees both sides hold identical trials.
type CoordJob struct {
	Job    Job
	Trials []engine.Trial
}

// CoordOptions configures one Coordinate call.
type CoordOptions struct {
	// ChunkSize is the number of trials per lease; <= 0 defaults to 8.
	// Smaller chunks bound the work a dead worker forfeits; larger
	// chunks amortize round trips.
	ChunkSize int
	// LeaseTTL is the heartbeat deadline: a lease not pinged for this
	// long is forfeit and its chunk is stolen by the next worker that
	// asks. <= 0 defaults to 10 seconds.
	LeaseTTL time.Duration
	// Linger bounds how long Coordinate keeps serving DONE responses to
	// connected workers after the sweep finishes, so they exit cleanly
	// instead of seeing a reset. <= 0 defaults to 3 seconds.
	Linger time.Duration
	// OnResult, if non-nil, is called once per newly completed trial
	// with the reporting worker's name. Duplicate deliveries from
	// stolen chunks do not re-fire it. Called under the coordinator's
	// lock — keep it fast.
	OnResult func(worker, expID string, t engine.Trial)
}

func (o CoordOptions) withDefaults() CoordOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Linger <= 0 {
		o.Linger = 3 * time.Second
	}
	return o
}

// Coordinate serves the jobs' trials to workers connecting on lis as
// leased chunks (see wire.go for the protocol) and returns each job's
// positional results, keyed by plan trial index, once every trial has
// a result. Scheduling is pull-based work stealing: workers take the
// next pending chunk when they are free, a chunk whose lease misses
// its heartbeat deadline (dead worker) or whose connection drops is
// reassigned, and a duplicate completion — the original worker was
// slow, not dead — is resolved by content: both encodings of a pure
// trial must be byte-identical, so the first result wins and a
// mismatch aborts the sweep as a determinism violation. Because every
// result lands at its plan index before any reduction, the assembled
// slices are exactly what a single-process run produces.
//
// A worker FAIL (trial execution error) re-leases the failed chunk
// once — preferring a different worker, so one faulty host does not
// kill a fleet-wide sweep — and aborts the sweep on the chunk's
// second failure, mirroring the engine's first-error-cancels
// semantics one retry later; the failing worker keeps serving other
// chunks, so even a lone worker drives its own retry to the abort. A
// worker REFUSE (plan mismatch, codec failure — systematic, never
// chunk-local) aborts immediately. Cancellation of ctx likewise
// aborts. lis is closed on return.
func Coordinate(ctx context.Context, lis net.Listener, jobs []CoordJob, opts CoordOptions) ([]map[int]any, error) {
	opts = opts.withDefaults()
	st, err := newCoordState(jobs, opts)
	if err != nil {
		lis.Close()
		return nil, err
	}

	var handlers sync.WaitGroup
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return // listener closed: sweep over or cancelled
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				st.handle(conn)
			}()
		}
	}()

	select {
	case <-ctx.Done():
		st.fail(ctx.Err())
	case <-st.done:
	}
	lis.Close()

	// Let connected workers poll once more and see DONE; then force
	// any straggler connections closed so handle() goroutines exit.
	drained := make(chan struct{})
	go func() { handlers.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(opts.Linger):
		st.closeConns()
		<-drained
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failure != nil {
		return nil, st.failure
	}
	return st.results, nil
}

// coordState is the shared state of one Coordinate call.
type coordState struct {
	mu        sync.Mutex
	jobs      []CoordJob
	byExp     map[string]int   // ExpID -> job index
	results   []map[int]any    // per job: trial index -> decoded value
	encoded   []map[int]string // per job: trial index -> raw payload (dup check)
	remaining int
	failure   error
	finished  bool
	done      chan struct{}
	leases    *leaseTable
	opts      CoordOptions
	connSeq   uint64
	conns     map[uint64]net.Conn
	// chunkFailed records chunks that already burned their one retry
	// (see failChunk).
	chunkFailed map[chunk]bool
}

func newCoordState(jobs []CoordJob, opts CoordOptions) (*coordState, error) {
	st := &coordState{
		jobs:        jobs,
		byExp:       make(map[string]int, len(jobs)),
		results:     make([]map[int]any, len(jobs)),
		encoded:     make([]map[int]string, len(jobs)),
		done:        make(chan struct{}),
		opts:        opts,
		conns:       map[uint64]net.Conn{},
		chunkFailed: map[chunk]bool{},
	}
	for j, job := range jobs {
		if job.Job.ExpID == "" || job.Job.Fingerprint == "" {
			return nil, fmt.Errorf("sweep: coordinate: job %d has empty identity", j)
		}
		if _, dup := st.byExp[job.Job.ExpID]; dup {
			return nil, fmt.Errorf("sweep: coordinate: duplicate job for %s", job.Job.ExpID)
		}
		for i, t := range job.Trials {
			if t.Index != i {
				return nil, fmt.Errorf("sweep: coordinate: %s trial %d has plan index %d (jobs must carry full plans)",
					job.Job.ExpID, i, t.Index)
			}
		}
		st.byExp[job.Job.ExpID] = j
		st.results[j] = make(map[int]any, len(job.Trials))
		st.encoded[j] = make(map[int]string, len(job.Trials))
		st.remaining += len(job.Trials)
	}
	st.leases = newLeaseTable(chunked(jobs, opts.ChunkSize), opts.LeaseTTL)
	if st.remaining == 0 {
		close(st.done)
		st.finished = true
	}
	return st, nil
}

// fail records the first failure and releases Coordinate. A failure
// reported after the sweep already finished successfully is ignored:
// every trial holds a content-verified result by then, so a
// straggler's FAIL/REFUSE (e.g. the live holder of a stolen chunk
// erroring during the linger window) cannot invalidate the outcome.
func (st *coordState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finished {
		return
	}
	st.failLocked(err)
}

// failNow is fail without the finished-success exemption — for result
// integrity errors (a determinism violation, a malformed delivery),
// which cast doubt on results already accepted and must surface even
// when the last trial has reported.
func (st *coordState) failNow(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failLocked(err)
}

func (st *coordState) failLocked(err error) {
	if st.failure == nil {
		st.failure = err
	}
	st.finishLocked()
}

func (st *coordState) finishLocked() {
	if !st.finished {
		st.finished = true
		close(st.done)
	}
}

func (st *coordState) isOver() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.finished
}

// finishLine renders the sweep's terminal reply: DONE on success,
// ABORT with the cause on failure.
func (st *coordState) finishLine() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failure != nil {
		return "ABORT " + quoteMsg(st.failure.Error())
	}
	return "DONE"
}

// chunkCovered reports whether every trial of c has a delivered
// result.
func (st *coordState) chunkCovered(c chunk) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.chunkCoveredLocked(c)
}

func (st *coordState) chunkCoveredLocked(c chunk) bool {
	m := st.results[c.JobIdx]
	for i := c.Lo; i < c.Hi; i++ {
		if _, ok := m[i]; !ok {
			return false
		}
	}
	return true
}

func (st *coordState) closeConns() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, c := range st.conns {
		c.Close()
	}
}

// handle serves one worker connection until it disconnects or the
// protocol is violated. Any lease the connection still holds when it
// goes away is revoked immediately — a visible disconnect reassigns
// faster than waiting out the TTL.
func (st *coordState) handle(conn net.Conn) {
	wc := newWireConn(conn)
	st.mu.Lock()
	st.connSeq++
	connID := st.connSeq
	st.conns[connID] = conn
	st.mu.Unlock()
	defer func() {
		wc.close()
		st.leases.RevokeConn(connID)
		st.mu.Lock()
		delete(st.conns, connID)
		st.mu.Unlock()
	}()

	worker := ""
	for {
		line, err := wc.recv()
		if err != nil {
			return
		}
		verb, fields := splitMsg(line)
		switch verb {
		case "HELLO":
			if len(fields) < 1 || fields[0] != protoVersion {
				wc.send("ERR " + quoteMsg(fmt.Sprintf("protocol version mismatch: want %s", protoVersion)))
				return
			}
			if len(fields) > 1 {
				worker = fields[1]
			}
			hb := st.opts.LeaseTTL / 3
			if hb < time.Millisecond {
				hb = time.Millisecond
			}
			if err := wc.send(fmt.Sprintf("OK %d", hb.Milliseconds())); err != nil {
				return
			}
		case "NEXT":
			if err := st.serveNext(wc, worker, connID); err != nil {
				return
			}
		case "PING":
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			reply := "GONE"
			if st.leases.Heartbeat(id) {
				reply = "OK"
			}
			if err := wc.send(reply); err != nil {
				return
			}
		case "RESULT":
			m, err := parseResult(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			if err := st.acceptResult(worker, m); err != nil {
				st.failNow(err)
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			st.leases.Heartbeat(m.LeaseID) // streaming counts as liveness
		case "COMPLETE":
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			reply := "GONE"
			if c, ok := st.leases.Complete(id); ok {
				reply = "OK"
				// Coverage backstop: a COMPLETE whose results did not
				// all arrive (a worker that violated the Execute
				// contract) must not strand its chunk in limbo — the
				// missing trials go back on the queue.
				if !st.chunkCovered(c) {
					st.leases.Requeue(c)
				}
			}
			if err := wc.send(reply); err != nil {
				return
			}
		case "FAIL":
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			msg := unquoteMsg(fields[1:])
			if c, ok := st.leases.Complete(id); ok {
				st.failChunk(worker, c, msg)
			}
			// A FAIL on an already-revoked lease is ignored: the chunk
			// was stolen and its fate belongs to its current owner —
			// if the error is deterministic, that owner's FAIL (on a
			// live lease) drives the retry accounting.
			if err := wc.send("OK"); err != nil {
				return
			}
		case "REFUSE":
			// This worker cannot run the sweep at all (plan mismatch,
			// codec failure) — systematic, never chunk-local, so abort
			// immediately rather than burning chunk retries.
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			st.leases.Complete(id)
			st.fail(fmt.Errorf("sweep: worker %s: %s", worker, unquoteMsg(fields[1:])))
			if err := wc.send("OK"); err != nil {
				return
			}
		default:
			wc.send("ERR " + quoteMsg(fmt.Sprintf("unknown verb %q", verb)))
			return
		}
	}
}

// serveNext answers one NEXT: a lease, a WAIT (everything leased out
// and alive), DONE (sweep complete), or ABORT (sweep failed) — the
// DONE/ABORT distinction lets an idle worker on a failed sweep exit
// nonzero instead of reporting success.
func (st *coordState) serveNext(wc *wireConn, worker string, connID uint64) error {
	if st.isOver() {
		return wc.send(st.finishLine())
	}
	if l, ok := st.leases.Acquire(worker, connID); ok {
		job := st.jobs[l.Chunk.JobIdx]
		return wc.send(formatLease(leaseMsg{
			ID:          l.ID,
			ExpID:       job.Job.ExpID,
			Fingerprint: job.Job.Fingerprint,
			Lo:          l.Chunk.Lo,
			Hi:          l.Chunk.Hi,
		}))
	}
	if st.isOver() {
		return wc.send(st.finishLine())
	}
	// All chunks are leased to live workers; poll again well inside
	// the TTL so a freshly expired lease is stolen promptly.
	wait := st.opts.LeaseTTL / 4
	if wait > 500*time.Millisecond {
		wait = 500 * time.Millisecond
	}
	if wait < 5*time.Millisecond {
		wait = 5 * time.Millisecond
	}
	return wc.send(fmt.Sprintf("WAIT %d", wait.Milliseconds()))
}

// failChunk handles a worker's FAIL for a live lease's chunk. The
// first failure re-leases the chunk once, preferring a different
// worker — one retry distinguishes a host-local fault (OOM kill, disk
// error, bad deploy on one machine) from a deterministic trial error
// without masking the latter. A second failure of the same chunk, by
// any worker, aborts the sweep, mirroring the engine's
// first-error-cancels semantics one retry later.
func (st *coordState) failChunk(worker string, c chunk, msg string) {
	// One critical section for coverage, the retry flip, and the
	// requeue: results land under the same lock (acceptResult), so a
	// chunk whose last result races the FAIL can neither be requeued
	// for pointless re-execution nor burn its retry budget.
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.chunkCoveredLocked(c) {
		// Every trial of the chunk already holds a content-verified
		// result (a presumed-dead worker delivered late, the thief
		// then failed): the failure concerns work nobody needs —
		// neither a retry nor an abort. Mirrors the COMPLETE
		// handler's coverage backstop.
		return
	}
	if !st.chunkFailed[c] {
		st.chunkFailed[c] = true
		st.leases.RequeueAvoiding(c, worker)
		return
	}
	if st.finished {
		return
	}
	st.failLocked(fmt.Errorf("sweep: worker %s: %s (%s trials [%d,%d) already failed once and were re-leased)",
		worker, msg, st.jobs[c.JobIdx].Job.ExpID, c.Lo, c.Hi))
}

// acceptResult records one delivered trial result. Results are valid
// regardless of lease state — trials are pure, so a revoked lease's
// late delivery is identical to the stolen re-execution — but two
// deliveries that disagree expose a broken determinism contract and
// abort the sweep.
func (st *coordState) acceptResult(worker string, m resultMsg) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byExp[m.ExpID]
	if !ok {
		return fmt.Errorf("sweep: result for unknown experiment %s", m.ExpID)
	}
	job := st.jobs[j]
	if m.Index < 0 || m.Index >= len(job.Trials) {
		return fmt.Errorf("sweep: result index %d outside %s plan of %d trials", m.Index, m.ExpID, len(job.Trials))
	}
	if prev, dup := st.encoded[j][m.Index]; dup {
		if !bytes.Equal([]byte(prev), m.Payload) {
			return fmt.Errorf("sweep: %s trial %d (%s): workers delivered different encodings — trial function is not deterministic",
				m.ExpID, m.Index, job.Trials[m.Index].Key)
		}
		return nil
	}
	v, err := DecodeResult(m.Payload)
	if err != nil {
		return fmt.Errorf("sweep: %s trial %d: %w", m.ExpID, m.Index, err)
	}
	st.encoded[j][m.Index] = string(m.Payload)
	st.results[j][m.Index] = v
	st.remaining--
	if st.opts.OnResult != nil {
		st.opts.OnResult(worker, m.ExpID, job.Trials[m.Index])
	}
	if st.remaining == 0 {
		st.finishLocked()
	}
	return nil
}

// errLeaseRevoked is the worker-side cause when a chunk's lease was
// stolen mid-execution: the work is abandoned, not failed.
var errLeaseRevoked = errors.New("sweep: lease revoked")
