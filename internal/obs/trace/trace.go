// Package trace is the sweep's causal timeline: a zero-dependency span
// model recorded into per-goroutine buffers and exported as Chrome
// trace-event JSON that loads directly in Perfetto or chrome://tracing.
//
// The span taxonomy mirrors the execution architecture: one root sweep
// span, a span per experiment, a span per chunk lease (coordinator and
// worker side, linked by a wire-propagated context id), a span per
// trial, and generate/freeze/search/reduce phase spans inside it.
// Steals, retries, reconnects, and drain appear as instant events;
// steal/retry lineage is carried by flow events ('s' at the cause, 'f'
// at the re-grant) so Perfetto draws an arrow from the lost lease to
// the chunk's next home.
//
// Determinism boundary: tracing observes the sweep, it never feeds it.
// Span and flow ids are derived by FNV-1a from the sweep's
// deterministic fingerprint plus chunk/trial indices — no math/rand,
// no hashing of wall-clock — so ids are stable across runs and across
// processes without coordination. Timestamps are wall-clock, but they
// flow only into the trace file, never into a result; the single
// sanctioned clock read lives in nowNano below.
//
// Hot-path discipline: a Writer is single-goroutine (the engine hands
// one to each worker goroutine) and records into a preallocated slice
// with a drop-newest overflow policy that still guarantees matched
// B/E pairs: Begin reserves space for its own End plus the Ends of
// every span already open, so an End never fails for lack of room.
// When a Begin is dropped, every nested Begin is dropped with it
// (suppress counting), so the recorded stream always nests correctly.
// Steady-state Begin/End/Instant on a warm Writer performs zero
// allocations (pinned by TestWriterZeroAlloc).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Record is one trace event. TS is absolute wall-clock nanoseconds;
// export normalizes to microseconds relative to the earliest record.
// B/E pairs carry no id — Chrome matches them by per-(pid,tid) stack
// order, which the Writer discipline guarantees. ID is used by flow
// events ('s'/'f') only.
type Record struct {
	TS   int64  // wall-clock nanoseconds (the trace clock)
	ID   uint64 // flow id for 's'/'f'; 0 otherwise
	TID  int32  // lane within the emitting process
	Ph   byte   // 'B', 'E', 'i', 's', or 'f'
	Name string
	Cat  string
	Arg  string // optional detail, exported as args:{"detail":...}
}

// nowNano is the trace clock. Timestamps feed only the trace file,
// never a result, so this is the package's one sanctioned clock read.
//
//sf:wallclock — trace timestamps are observability output only.
func nowNano() int64 { return time.Now().UnixNano() }

// Now exposes the trace clock for callers that build Records by hand
// (the coordinator's cold-path lease spans). It is not for trial code.
func Now() int64 { return nowNano() }

// Writer records spans for one goroutine. It is not safe for
// concurrent use; acquire one per goroutine from Recorder.Writer and
// hand it back with Recorder.Release. A nil *Writer is a valid no-op
// recorder, so call sites need no tracing-enabled branches.
type Writer struct {
	recs      []Record
	tid       int32
	reserved  int   // open recorded spans: each holds one End slot
	suppress  int   // nesting depth of dropped Begins
	dropped   int64 // records lost to overflow
	bfsSample int   // copy of Recorder.BFSSample
}

// TID returns the lane this writer records into (0 for a nil writer).
func (w *Writer) TID() int32 {
	if w == nil {
		return 0
	}
	return w.tid
}

// SampleEvery returns the BFS level-span sampling stride: 0 disables
// level spans, k records every k-th level.
func (w *Writer) SampleEvery() int {
	if w == nil {
		return 0
	}
	return w.bfsSample
}

// Begin opens a span. The overflow policy is drop-newest with
// guaranteed pairing: recording requires room for this Begin, its own
// End, and the reserved Ends of every open span; otherwise the span
// and everything nested in it are suppressed and counted as dropped.
//
//sf:hotpath — runs inside the trial loop.
func (w *Writer) Begin(name, cat string) {
	if w == nil {
		return
	}
	if w.suppress > 0 || cap(w.recs)-len(w.recs) < w.reserved+2 {
		w.suppress++
		w.dropped++
		return
	}
	w.recs = append(w.recs, Record{TS: nowNano(), TID: w.tid, Ph: 'B', Name: name, Cat: cat})
	w.reserved++
}

// End closes the innermost open span. Ends of suppressed Begins are
// absorbed by the suppress count; Ends of recorded Begins always have
// a reserved slot, so a recorded B is never left unmatched.
//
//sf:hotpath — runs inside the trial loop.
func (w *Writer) End() {
	if w == nil {
		return
	}
	if w.suppress > 0 {
		w.suppress--
		return
	}
	if w.reserved == 0 {
		return // unmatched End: ignore rather than corrupt the stream
	}
	w.reserved--
	w.recs = append(w.recs, Record{TS: nowNano(), TID: w.tid, Ph: 'E'})
}

// Instant records a zero-duration event. It must not eat into the
// reserved End slots, so it needs reserved+1 free records.
//
//sf:hotpath — runs inside the trial loop.
func (w *Writer) Instant(name, cat, arg string) {
	if w == nil {
		return
	}
	if cap(w.recs)-len(w.recs) < w.reserved+1 {
		w.dropped++
		return
	}
	w.recs = append(w.recs, Record{TS: nowNano(), TID: w.tid, Ph: 'i', Name: name, Cat: cat, Arg: arg})
}

// defaultWriterCap bounds one writer's buffer: 8192 records ≈ 0.6 MiB.
// Long sweeps overflow into the drop-newest policy rather than grow.
const defaultWriterCap = 8192

// Recorder owns the process's trace state: it hands out per-goroutine
// Writers, collects their records on release, accepts cold-path
// records via Emit, merges worker batches received over the wire into
// per-worker process lanes, and exports the whole timeline as Chrome
// trace-event JSON. All methods are safe on a nil receiver, and the
// internal mutex is a leaf lock: Emit and the pending-flow helpers are
// callable under any sweep lock.
type Recorder struct {
	// ProcName labels process lane 0 in the export ("sweep",
	// "coordinator", ...). Set before WriteJSON.
	ProcName string
	// WriterCap overrides the per-writer buffer capacity (records).
	// Zero means defaultWriterCap. Set before the first Writer call.
	WriterCap int
	// BFSSample is copied to each new Writer: 0 disables BFS level
	// spans, k records every k-th frontier level.
	BFSSample int

	enabled atomic.Bool

	mu       sync.Mutex
	spill    []Record // released writer records + Emit cold path
	free     []*Writer
	nextTID  int32
	workers  []string   // merge order defines worker pids (lane i → pid i+1)
	merged   [][]Record // wire batches per worker
	pending  map[string]uint64
	attempts map[string]int
	dropped  int64
}

// New returns an enabled Recorder. Worker processes keep theirs
// disabled (SetEnabled(false)) until a traced lease arrives over the
// wire, so an untraced sweep records nothing.
func New() *Recorder {
	r := &Recorder{ProcName: "sweep"}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips recording. While disabled, Writer returns nil and
// Emit drops, so every record call degrades to a no-op.
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the recorder is accepting records.
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// Writer returns a single-goroutine span writer, recycling released
// buffers so lane ids stay bounded by the peak writer concurrency.
// Returns nil (a valid no-op writer) when the recorder is disabled.
func (r *Recorder) Writer() *Writer {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		w := r.free[n-1]
		r.free = r.free[:n-1]
		w.bfsSample = r.BFSSample
		return w
	}
	capacity := r.WriterCap
	if capacity <= 0 {
		capacity = defaultWriterCap
	}
	r.nextTID++
	return &Writer{recs: make([]Record, 0, capacity), tid: r.nextTID, bfsSample: r.BFSSample}
}

// Release drains a writer's records into the recorder and recycles the
// buffer. Dangling open spans are closed first so the stream keeps its
// matched-pair guarantee even if the owner unwound early.
func (r *Recorder) Release(w *Writer) {
	if r == nil || w == nil {
		return
	}
	for w.reserved > 0 {
		w.End()
	}
	w.suppress = 0
	r.mu.Lock()
	r.spill = append(r.spill, w.recs...)
	r.dropped += w.dropped
	w.recs = w.recs[:0]
	w.dropped = 0
	r.free = append(r.free, w)
	r.mu.Unlock()
}

// Emit appends one cold-path record (coordinator lease spans, flow
// events, lifecycle instants). A zero TS is stamped on entry. The
// recorder mutex is a leaf lock, so Emit is safe under sweep locks.
func (r *Recorder) Emit(rec Record) {
	if !r.Enabled() {
		return
	}
	if rec.TS == 0 {
		rec.TS = nowNano()
	}
	r.mu.Lock()
	r.spill = append(r.spill, rec)
	r.mu.Unlock()
}

// Drain removes and returns every locally recorded record (released
// writers plus Emit). Workers call it after each lease to ship the
// batch on the COMPLETE line.
func (r *Recorder) Drain() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := r.spill
	r.spill = nil
	r.mu.Unlock()
	return out
}

// Reset discards locally recorded records in place, keeping capacity.
// Benchmarks use it to hold steady-state between iterations.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spill = r.spill[:0]
	r.mu.Unlock()
}

// Merge files a worker's wire batch under that worker's process lane.
// The first batch from a name allocates the lane; order of first
// arrival defines worker pids.
func (r *Recorder) Merge(worker string, recs []Record) {
	if r == nil || len(recs) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, name := range r.workers {
		if name == worker {
			r.merged[i] = append(r.merged[i], recs...)
			return
		}
	}
	r.workers = append(r.workers, worker)
	r.merged = append(r.merged, append([]Record(nil), recs...))
}

// Dropped returns the number of records lost to writer overflow so
// far collected (released writers only).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// SetPending remembers a flow id for a key (a chunk whose lease was
// stolen or failed) until the chunk is re-granted. Leaf-locked, so
// callable from under the lease table's lock.
func (r *Recorder) SetPending(key string, id uint64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	if r.pending == nil {
		r.pending = make(map[string]uint64)
	}
	r.pending[key] = id
	r.mu.Unlock()
}

// NextFlow derives the retry-flow id for the key's next attempt (a
// per-key counter folded into base by FNV-1a, so repeated steals of
// one chunk get distinct flow ids) and registers it as pending until
// the chunk's re-grant consumes it with TakePending. Returns false
// when the recorder is disabled.
func (r *Recorder) NextFlow(key string, base uint64) (uint64, bool) {
	if !r.Enabled() {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.attempts == nil {
		r.attempts = make(map[string]int)
	}
	r.attempts[key]++
	id := fnvInt(base, uint64(r.attempts[key]))
	if r.pending == nil {
		r.pending = make(map[string]uint64)
	}
	r.pending[key] = id
	return id, true
}

// TakePending retrieves and clears the pending flow id for a key.
func (r *Recorder) TakePending(key string) (uint64, bool) {
	if !r.Enabled() {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.pending[key]
	if ok {
		delete(r.pending, key)
	}
	return id, ok
}

// AbandonPending terminates every still-pending flow with an 'f'
// event named "retry_abandoned", so a steal whose chunk completed
// through the original lease (and was never re-granted) still has a
// matched flow pair in the export. Call once at sweep completion.
func (r *Recorder) AbandonPending() {
	if !r.Enabled() {
		return
	}
	now := nowNano()
	r.mu.Lock()
	for key, id := range r.pending {
		r.spill = append(r.spill, Record{TS: now, ID: id, Ph: 'f', Name: "retry_abandoned", Cat: "flow", Arg: key})
		delete(r.pending, key)
	}
	r.mu.Unlock()
}

// FNV-1a 64-bit. Ids must be deterministic and coordination-free, so
// they hash the sweep's content fingerprint plus indices; two distinct
// chunks of one sweep get distinct ids with overwhelming probability,
// and the same chunk gets the same id in every process.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvInt(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// LeaseContext derives the wire-propagated trace context id for a
// chunk: the flow id linking the coordinator's grant to the worker's
// lease span.
func LeaseContext(expID, fingerprint string, lo, hi int) uint64 {
	h := fnvString(fnvString(uint64(fnvOffset), expID), fingerprint)
	h = fnvInt(h, uint64(lo))
	h = fnvInt(h, uint64(hi))
	return h
}

// RetryFlow derives the flow id linking a steal or failure of a chunk
// (attempt n) to its re-grant (attempt n+1).
func RetryFlow(expID, fingerprint string, lo, hi, attempt int) uint64 {
	return fnvInt(LeaseContext(expID, fingerprint, lo, hi), uint64(attempt))
}

// Attacher is implemented by scratch types that can carry a trace
// writer into the trial function (core.Scratch). The engine attaches
// the per-worker writer through this seam so the engine stays generic.
type Attacher interface {
	AttachTrace(w *Writer)
}
