package search

import (
	"fmt"

	"scalefree/internal/rng"
)

// Result reports one search run.
type Result struct {
	Found    bool
	Requests int
}

// Algorithm is a local search strategy operating through an Oracle.
// Implementations must access the graph exclusively via oracle requests
// in their declared knowledge model.
type Algorithm interface {
	// Name identifies the algorithm in tables and logs.
	Name() string
	// Knowledge is the model the algorithm requires.
	Knowledge() Knowledge
	// Search runs until the target is found or maxRequests requests
	// have been spent (maxRequests <= 0 means unbounded). It returns
	// ErrBudgetExhausted wrapped in no error — budget exhaustion is a
	// normal outcome reported via Result.Found=false — and reserves
	// error returns for oracle protocol violations, which indicate
	// bugs.
	Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error)
}

// budgetLeft reports whether another request may be spent.
func budgetLeft(o *Oracle, maxRequests int) bool {
	return maxRequests <= 0 || o.Requests() < maxRequests
}

// stepCap bounds the total number of *moves* (including free moves
// along already-resolved edges) for walk-style algorithms, so that a
// walk confined to an exhausted region terminates. It is generous
// enough (64× the request budget) that no measurement in the repo is
// step-capped before it is request-capped.
func stepCap(maxRequests int) int {
	if maxRequests <= 0 {
		return 1 << 40
	}
	return 64*maxRequests + 1024
}

// checkModel verifies an algorithm/oracle pairing.
func checkModel(a Algorithm, o *Oracle) error {
	if a.Knowledge() != o.Knowledge() {
		return fmt.Errorf("search: algorithm %q needs the %v model, oracle provides %v",
			a.Name(), a.Knowledge(), o.Knowledge())
	}
	return nil
}

// WeakAlgorithms returns one instance of every weak-model algorithm,
// the set measured by experiments E1 and E3.
func WeakAlgorithms() []Algorithm {
	return []Algorithm{
		NewRandomWalk(),
		NewSelfAvoidingWalk(),
		NewFlood(),
		NewRandomEdge(),
		NewDegreeGreedyWeak(),
		NewIDGreedyWeak(),
		NewMixedGreedy(0.5),
	}
}

// StrongAlgorithms returns one instance of every strong-model
// algorithm, the set measured by experiments E2 and E8.
func StrongAlgorithms() []Algorithm {
	return []Algorithm{
		NewDegreeGreedyStrong(),
		NewIDGreedyStrong(),
		NewRandomWalkStrong(),
		NewTwoPhase(),
		NewBiasedWalk(1),
	}
}
