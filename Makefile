GO ?= go

.PHONY: all build test test-short vet bench ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# bench compiles and runs every benchmark once; use
#   go test -bench ExperimentWorkers -benchtime 5x .
# for stable parallel-speedup numbers on a multi-core machine.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet test
