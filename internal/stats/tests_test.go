package stats

import (
	"math"
	"testing"

	"scalefree/internal/rng"
)

func TestChiSquareUniformFit(t *testing.T) {
	// Counts drawn from a fair distribution should not be rejected.
	r := rng.New(21)
	observed := make([]int, 6)
	const draws = 60000
	for i := 0; i < draws; i++ {
		observed[r.Intn(6)]++
	}
	expected := make([]float64, 6)
	for i := range expected {
		expected[i] = draws / 6.0
	}
	res, err := ChiSquareGoodnessOfFit(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 5 {
		t.Errorf("DF = %d, want 5", res.DF)
	}
	if res.PValue < 0.001 {
		t.Errorf("fair die rejected: p = %v (stat %v)", res.PValue, res.Statistic)
	}
}

func TestChiSquareDetectsBias(t *testing.T) {
	observed := []int{9000, 1000}
	expected := []float64{5000, 5000}
	res, err := ChiSquareGoodnessOfFit(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("gross bias not detected: p = %v", res.PValue)
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	// Chi-square SF at its own DF is a classic sanity point:
	// P(X² >= 3.841) ≈ 0.05 for df=1.
	if got := chiSquareSF(3.841, 1); math.Abs(got-0.05) > 0.001 {
		t.Errorf("chiSquareSF(3.841, 1) = %v, want ~0.05", got)
	}
	if got := chiSquareSF(11.070, 5); math.Abs(got-0.05) > 0.001 {
		t.Errorf("chiSquareSF(11.070, 5) = %v, want ~0.05", got)
	}
	if got := chiSquareSF(0, 3); got != 1 {
		t.Errorf("chiSquareSF(0) = %v, want 1", got)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquareGoodnessOfFit([]int{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareGoodnessOfFit([]int{1}, []float64{1}, 0); err == nil {
		t.Error("single cell accepted")
	}
	if _, err := ChiSquareGoodnessOfFit([]int{1, 2}, []float64{1, 0}, 0); err == nil {
		t.Error("zero expected count accepted")
	}
	if _, err := ChiSquareGoodnessOfFit([]int{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("df < 1 accepted")
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rng.New(31)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	res, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("identical distributions rejected: p = %v (D = %v)", res.PValue, res.Statistic)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	r := rng.New(37)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64() + 0.3
	}
	res, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("shifted distributions not detected: p = %v", res.PValue)
	}
	if res.Statistic < 0.2 {
		t.Errorf("KS statistic %v too small for a 0.3 shift", res.Statistic)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := KSTwoSample([]float64{1}, nil); err == nil {
		t.Error("empty second sample accepted")
	}
}

func TestKSDoesNotMutateInputs(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{5, 4}
	if _, err := KSTwoSample(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 3 || b[0] != 5 {
		t.Error("KS mutated inputs")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rng.New(41)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + r.Float64() // mean 10.5
	}
	bs, err := BootstrapMeanCI(xs, 500, 0.95, r.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Lo > bs.Mean || bs.Hi < bs.Mean {
		t.Errorf("CI [%v, %v] does not contain mean %v", bs.Lo, bs.Hi, bs.Mean)
	}
	if bs.Lo > 10.5 || bs.Hi < 10.5 {
		t.Errorf("CI [%v, %v] misses the true mean 10.5", bs.Lo, bs.Hi)
	}
	if bs.Hi-bs.Lo > 0.2 {
		t.Errorf("CI [%v, %v] implausibly wide", bs.Lo, bs.Hi)
	}
}

func TestBootstrapErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := BootstrapMeanCI(nil, 100, 0.95, r.Uint64); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 5, 0.95, r.Uint64); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 100, 1.5, r.Uint64); err == nil {
		t.Error("bad level accepted")
	}
}

func TestChiSquareTwoSampleSameDistribution(t *testing.T) {
	// Two multinomial draws from one distribution: the test must not
	// reject at any sane level.
	a := []int{480, 260, 130, 70, 40, 20}
	b := []int{505, 245, 120, 75, 35, 20}
	res, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.05 {
		t.Errorf("same-distribution histograms rejected: p=%v (stat=%v, df=%d)", res.PValue, res.Statistic, res.DF)
	}
	if res.DF != len(a)-1 {
		t.Errorf("df=%d, want %d for equal totals", res.DF, len(a)-1)
	}
}

func TestChiSquareTwoSampleDetectsShift(t *testing.T) {
	a := []int{500, 250, 125, 62, 31, 32}
	b := []int{250, 250, 250, 125, 62, 63}
	res, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("clearly different histograms not rejected: p=%v", res.PValue)
	}
}

func TestChiSquareTwoSampleSkipsEmptyCellsAndUnequalTotals(t *testing.T) {
	a := []int{100, 0, 50, 0}
	b := []int{210, 0, 90, 0}
	res, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Two informative cells, unequal totals: df stays at the cell count.
	if res.DF != 2 {
		t.Errorf("df=%d, want 2", res.DF)
	}
}

func TestChiSquareTwoSampleErrors(t *testing.T) {
	if _, err := ChiSquareTwoSample([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareTwoSample([]int{1, -1}, []int{1, 1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ChiSquareTwoSample([]int{0, 0}, []int{1, 1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := ChiSquareTwoSample([]int{5, 0}, []int{5, 0}); err == nil {
		t.Error("single informative cell accepted")
	}
}
