// Package scalefree reproduces "Non-Searchability of Random Scale-Free
// Graphs" (Duchon, Eggemann, Hanusse; 2007) as a complete Go library.
//
// The repository implements, from scratch and on the standard library
// only:
//
//   - the Móri model of mixed uniform/preferential attachment random
//     trees and its merged m-out graph variant (internal/mori);
//   - the Cooper–Frieze general model of evolving web graphs
//     (internal/cooperfrieze);
//   - the Barabási–Albert model and the Molloy–Reed power-law
//     configuration model used by the related work the paper contrasts
//     against (internal/ba, internal/configmodel);
//   - Kleinberg's navigable small-world grid and its greedy routing
//     (internal/kleinberg);
//   - the Bianconi–Barabási vertex-fitness model and a geometric
//     (spatial) preferential-attachment model, the two workloads the
//     paper's closing remark invites (internal/fitness,
//     internal/geopa), published with every other generator in the
//     pluggable model registry (internal/model);
//   - the weak and strong models of local knowledge and a suite of
//     local search algorithms measured in numbers of oracle requests
//     (internal/search), plus Sarshar-style percolation search
//     (internal/percolation);
//   - the probabilistic vertex-equivalence machinery behind the paper's
//     Ω(√n) lower bounds: the event E_{a,b}, its exact conditional
//     probability, and the Lemma-1 bound |V|·P(E)/2
//     (internal/equivalence, internal/core);
//   - an experiment harness regenerating every quantitative claim as a
//     table: experiments E1–E13 declared as trial plans and executed on
//     a deterministic worker pool (internal/experiment,
//     internal/engine, cmd/experiments, bench_test.go).
//
// See DESIGN.md for the system inventory and execution architecture,
// and EXPERIMENTS.md for paper-versus-measured results.
package scalefree
