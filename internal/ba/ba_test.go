package ba

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestValidate(t *testing.T) {
	for _, c := range []Config{{N: 1, M: 1}, {N: 10, M: 0}} {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	if err := (Config{N: 2, M: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGenerateCountsAndConnectivity(t *testing.T) {
	for _, m := range []int{1, 3} {
		g, err := Config{N: 1000, M: m}.Generate(rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != 1000 {
			t.Fatalf("m=%d: vertices = %d", m, g.NumVertices())
		}
		if want := 1 + m*999; g.NumEdges() != want {
			t.Fatalf("m=%d: edges = %d, want %d", m, g.NumEdges(), want)
		}
		if !graph.IsConnected(g) {
			t.Fatalf("m=%d: BA graph disconnected", m)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Config{N: 500, M: 2}.Generate(rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Config{N: 500, M: 2}.Generate(rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestEdgesPointToOlderVertices(t *testing.T) {
	g, err := Config{N: 400, M: 2}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e < g.NumEdges(); e++ { // edge 0 is the seed loop
		u, v := g.Endpoints(graph.EdgeID(e))
		if v > u {
			t.Fatalf("edge %d points from %d to younger vertex %d", e, u, v)
		}
	}
}

func TestDegreeDistributionPowerLaw(t *testing.T) {
	// BA degree distribution has exponent ~3.
	g, err := Config{N: 20000, M: 2}.Generate(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLaw(g.Degrees()[1:], 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-3) > 0.5 {
		t.Errorf("BA exponent = %v (se %v), want ~3", fit.Alpha, fit.StdErr)
	}
}

func TestMaxDegreeOrderSqrtN(t *testing.T) {
	// BA hubs grow like n^(1/2): the fitted growth exponent across a
	// size sweep should be near 0.5 (wide tolerance; single seed per
	// size keeps the test fast).
	var ns, maxes []float64
	for _, n := range []int{2000, 4000, 8000, 16000, 32000} {
		best := 0.0
		for rep := uint64(0); rep < 5; rep++ {
			g, err := Config{N: n, M: 1}.Generate(rng.New(rng.DeriveSeed(100, uint64(n)*10+rep)))
			if err != nil {
				t.Fatal(err)
			}
			best += float64(g.MaxDegree())
		}
		ns = append(ns, float64(n))
		maxes = append(maxes, best/5)
	}
	fit, err := stats.FitScaling(ns, maxes)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Exponent < 0.3 || fit.Exponent > 0.7 {
		t.Errorf("BA max-degree exponent = %v (R²=%v), want ~0.5", fit.Exponent, fit.R2)
	}
}

func TestGenerateScratchMatchesGenerate(t *testing.T) {
	cfg := Config{N: 300, M: 2}
	var s Scratch
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := cfg.Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cfg.GenerateScratch(rng.New(seed), &s)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(want, got) {
			t.Fatalf("seed %d: scratch generation diverges from Generate", seed)
		}
	}
}

// TestGenerateScratchAllocFree pins the steady state of the scratch
// path: after a warm-up generation, repeated same-size draws perform
// zero allocations.
func TestGenerateScratchAllocFree(t *testing.T) {
	cfg := Config{N: 500, M: 2}
	var s Scratch
	r := rng.New(3)
	gen := func() {
		if _, err := cfg.GenerateScratch(r, &s); err != nil {
			t.Fatal(err)
		}
	}
	gen() // warm up the buffers
	if allocs := testing.AllocsPerRun(10, gen); allocs > 0 {
		t.Errorf("steady-state GenerateScratch allocates %v times per graph, want 0", allocs)
	}
}

func BenchmarkGenerate(b *testing.B) {
	r := rng.New(1)
	cfg := Config{N: 1 << 13, M: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(r); err != nil {
			b.Fatal(err)
		}
	}
}
