package configmodel

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{N: 1, Exponent: 2.5},
		{N: 100, Exponent: 1},
		{N: 100, Exponent: 0.9},
		{N: 100, Exponent: 2.5, MinDeg: -1},
		{N: 100, Exponent: 2.5, MinDeg: 50, MaxDeg: 10},
	}
	for i, c := range bad {
		if _, err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	maxDeg, err := (Config{N: 10000, Exponent: 2.5}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	// Natural cutoff n^(1/(k-1)) = 10000^(2/3) ≈ 464.
	if maxDeg < 300 || maxDeg > 600 {
		t.Errorf("natural cutoff = %d, want ≈464", maxDeg)
	}
}

func TestGenerateDegreeSumEven(t *testing.T) {
	g, err := Config{N: 5001, Exponent: 2.3}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, d := range g.Degrees()[1:] {
		sum += d
	}
	if sum%2 != 0 {
		t.Fatalf("degree sum %d is odd", sum)
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2·edges %d", sum, 2*g.NumEdges())
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{N: 2000, Exponent: 2.5}
	a, err := cfg.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestSimpleVariantHasNoLoopsOrMultiEdges(t *testing.T) {
	g, err := Config{N: 3000, Exponent: 2.2, Simple: true}.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSelfLoops() != 0 {
		t.Errorf("simple graph has %d self-loops", g.NumSelfLoops())
	}
	seen := map[[2]graph.Vertex]bool{}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		key := [2]graph.Vertex{u, v}
		if u > v {
			key = [2]graph.Vertex{v, u}
		}
		if seen[key] {
			t.Fatalf("duplicate edge (%d, %d)", u, v)
		}
		seen[key] = true
	}
}

func TestDegreeDistributionMatchesExponent(t *testing.T) {
	k := 2.5
	g, err := Config{N: 30000, Exponent: k, MinDeg: 1}.Generate(rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLaw(g.Degrees()[1:], 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-k) > 0.2 {
		t.Errorf("fitted exponent %v (se %v), want ~%v", fit.Alpha, fit.StdErr, k)
	}
}

func TestGiantComponentIsLargeAndConnected(t *testing.T) {
	// With k = 2.3 and min degree 1 the giant component holds most
	// vertices.
	sub, orig, err := Config{N: 10000, Exponent: 2.3}.GenerateGiant(rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(sub) {
		t.Fatal("giant component not connected")
	}
	if sub.NumVertices() < 5000 {
		t.Errorf("giant component only %d of 10000 vertices", sub.NumVertices())
	}
	if len(orig) != sub.NumVertices()+1 {
		t.Errorf("origID length %d, want %d", len(orig), sub.NumVertices()+1)
	}
	// Mapping must be strictly increasing (relabelling preserves order).
	for i := 2; i < len(orig); i++ {
		if orig[i] <= orig[i-1] {
			t.Fatalf("origID not increasing at %d: %d <= %d", i, orig[i], orig[i-1])
		}
	}
}

func TestMinDegTwoRaisesConnectivity(t *testing.T) {
	sub, _, err := Config{N: 5000, Exponent: 2.5, MinDeg: 2}.GenerateGiant(rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() < 4500 {
		t.Errorf("min-degree-2 giant component only %d of 5000", sub.NumVertices())
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{N: 1 << 13, Exponent: 2.3}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(r); err != nil {
			b.Fatal(err)
		}
	}
}
