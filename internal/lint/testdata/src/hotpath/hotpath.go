// Package hotpath is the fixture for the hotpath analyzer: each
// allocation source flagged, each sanctioned pattern allowed.
package hotpath

import "fmt"

//sf:hotpath
func closure() {
	f := func() {} // want `closure allocation in //sf:hotpath closure`
	f()
}

//sf:hotpath
func fmtCall(x int) string {
	return fmt.Sprint(x) // want `fmt\.Sprint call in //sf:hotpath fmtCall`
}

//sf:hotpath
func nilSliceAppend() []int {
	var s []int
	for i := 0; i < 8; i++ {
		s = append(s, i) // want `append to unpreallocated local slice s`
	}
	return s
}

//sf:hotpath
func emptyLitAppend() []int {
	s := []int{}
	s = append(s, 1) // want `append to unpreallocated local slice s`
	return s
}

//sf:hotpath
func makeNoCapAppend() []int {
	s := make([]int, 0)
	s = append(s, 1) // want `append to local slice s made without capacity`
	return s
}

//sf:hotpath
func preallocated(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}

// appendToParam: parameters are caller-preallocated by contract.
//
//sf:hotpath
func appendToParam(dst []byte, b byte) []byte {
	return append(dst, b)
}

type scratch struct{ buf []int }

// fieldAppend: scratch-buffer fields amortize across calls.
//
//sf:hotpath
func (s *scratch) fieldAppend(v int) {
	s.buf = append(s.buf, v)
}

func take(v any) {}

//sf:hotpath
func boxArgument(x int) {
	take(x) // want `interface boxing in //sf:hotpath boxArgument: argument passed as`
}

//sf:hotpath
func boxReturn(x int) any {
	return x // want `interface boxing in //sf:hotpath boxReturn: return value of`
}

//sf:hotpath
func boxAssign(x int) any {
	var v any
	v = x // want `interface boxing in //sf:hotpath boxAssign: assignment to`
	return v
}

//sf:hotpath
func boxConversion(x int) {
	_ = any(x) // want `interface boxing in //sf:hotpath boxConversion: conversion to`
}

// nilAndInterface: nil and interface-to-interface moves don't box.
//
//sf:hotpath
func nilAndInterface(v any) any {
	if v == nil {
		return nil
	}
	return v
}

// notAnnotated allocates freely — only //sf:hotpath bodies are held to
// the discipline.
func notAnnotated() []int {
	var s []int
	s = append(s, 1)
	_ = fmt.Sprint(s)
	return s
}
