// Structured sweep event log: one JSON object per line, fixed schema,
// append-only, with optional size-based rotation — the post-mortem
// artifact a chaos or fleet run leaves behind. Because the schema is a
// fixed struct (field order is the struct order, absent fields are
// omitted), two runs' logs diff cleanly once the wall-clock ts column
// is stripped:
//
//	diff <(cut -d, -f3- a.jsonl) <(cut -d, -f3- b.jsonl)
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Event is one sweep-lifecycle record. Event (the type tag) is always
// set; the remaining fields are populated per type — the schema table
// in DESIGN.md §9 says which. Seq and TS are stamped by EventLog.Emit.
type Event struct {
	// Seq numbers events 1..N in emission order — the tie-breaker and
	// diff anchor wall-clock timestamps cannot be.
	Seq uint64 `json:"seq"`
	// TS is the emission wall-clock time, RFC3339Nano in UTC.
	TS string `json:"ts"`
	// Event is the type tag, e.g. "lease_grant", "worker_join".
	Event string `json:"event"`
	// Worker names the sweep worker involved, when one is.
	Worker string `json:"worker,omitempty"`
	// Exp is the experiment ID a lease or trial event belongs to.
	Exp string `json:"exp,omitempty"`
	// Lease is the lease ID for lease-lifecycle events.
	Lease uint64 `json:"lease,omitempty"`
	// Chunk renders the trial range as "[lo,hi)".
	Chunk string `json:"chunk,omitempty"`
	// Conn is the connection index (coordinator accept order, or a
	// faultnet connection index for fault events).
	Conn uint64 `json:"conn,omitempty"`
	// Op tags fault events with the injected operation ("reset",
	// "truncation", "partition").
	Op string `json:"op,omitempty"`
	// N is the event's count payload: bytes evicted, entries removed,
	// leases revoked, the faultnet op sequence number.
	N int64 `json:"n,omitempty"`
	// Msg carries free-text detail (error strings, drain causes).
	Msg string `json:"msg,omitempty"`
}

// ChunkRange renders a trial range for Event.Chunk.
func ChunkRange(lo, hi int) string { return fmt.Sprintf("[%d,%d)", lo, hi) }

// EventLog writes Events as JSON lines through a buffered writer. All
// methods are safe for concurrent use and nil-safe, so instrumented
// code paths pass a possibly-nil *EventLog around freely. Write errors
// are sticky: the first one is kept, later Emits become no-ops, and
// Close reports it — an ops artifact must fail loudly, not truncate
// silently.
type EventLog struct {
	mu    sync.Mutex
	w     *bufio.Writer
	close io.Closer
	seq   uint64
	err   error
	now   func() time.Time // injectable for tests

	// Rotation state, active only for path-opened logs with a byte
	// limit. Sequence numbers live on the log, not the file, so they
	// stay monotonic across rotations.
	path     string
	maxBytes int64
	written  int64
	rotated  int
}

// NewEventLog writes events to w. If w is also an io.Closer, Close
// closes it.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{w: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		l.close = c
	}
	return l
}

// OpenEventLog creates (truncating) the JSONL file at path.
func OpenEventLog(path string) (*EventLog, error) {
	return OpenEventLogRotating(path, 0)
}

// OpenEventLogRotating is OpenEventLog with size-based rotation: when
// writing an event would push the current file past maxBytes, the file
// is closed and renamed to the next rotation name — events.jsonl
// becomes events.1.jsonl, then events.2.jsonl, and so on, lowest
// suffix oldest — and a fresh file opens at path. Sequence numbers
// keep counting across rotations, so concatenating the rotated files
// in suffix order followed by the live file replays the sweep with
// monotonic seq. maxBytes <= 0 disables rotation; an event larger than
// maxBytes by itself still lands (alone) in a fresh file rather than
// being dropped.
func OpenEventLogRotating(path string, maxBytes int64) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening event log: %w", err)
	}
	l := NewEventLog(f)
	l.path = path
	l.maxBytes = maxBytes
	return l, nil
}

// rotationName derives the k-th rotated file name by inserting the
// rotation index before the extension: events.jsonl -> events.3.jsonl.
func rotationName(path string, k int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%d%s", path[:len(path)-len(ext)], k, ext)
}

// rotateLocked closes and renames the current file and opens a fresh
// one at path. Called with mu held, only for path-opened logs.
func (l *EventLog) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("obs: rotating event log: %w", err)
	}
	if l.close != nil {
		if err := l.close.Close(); err != nil {
			return fmt.Errorf("obs: rotating event log: %w", err)
		}
	}
	if err := os.Rename(l.path, rotationName(l.path, l.rotated+1)); err != nil {
		return fmt.Errorf("obs: rotating event log: %w", err)
	}
	f, err := os.Create(l.path)
	if err != nil {
		return fmt.Errorf("obs: rotating event log: %w", err)
	}
	l.rotated++
	l.w = bufio.NewWriter(f)
	l.close = f
	l.written = 0
	return nil
}

// Emit stamps e with the next sequence number and the current time,
// then appends it as one JSON line. Each line is flushed through the
// buffer immediately, so a `tail -f` (or a crashed process's log)
// always ends on a complete line.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	e.TS = l.now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		l.err = fmt.Errorf("obs: encoding event: %w", err)
		return
	}
	line := append(data, '\n')
	if l.maxBytes > 0 && l.written > 0 && l.written+int64(len(line)) > l.maxBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return
		}
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = fmt.Errorf("obs: writing event log: %w", err)
		return
	}
	l.written += int64(len(line))
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("obs: writing event log: %w", err)
	}
}

// Err reports the sticky write error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the underlying writer, reporting the first
// error the log hit.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.close != nil {
		if err := l.close.Close(); err != nil && l.err == nil {
			l.err = err
		}
	}
	return l.err
}
