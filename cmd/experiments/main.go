// Command experiments runs the paper-reproduction experiment suite
// (E1–E11, see DESIGN.md) and prints the EXPERIMENTS.md tables.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale 1.0] [-seed 2024] [-workers 0]
//	            [-progress] [-csv dir]
//
// -scale shrinks workload sizes and replication counts proportionally
// (0.1 gives a quick smoke run); -workers bounds the trial worker pool
// (0 uses every core; output is bit-identical for every worker count
// under the same seed); -progress streams per-trial completions to
// stderr; -csv additionally writes every table as a CSV file into the
// given directory. Ctrl-C cancels the run between trials.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runList  = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full EXPERIMENTS.md workload)")
		seed     = flag.Uint64("seed", 2024, "master seed")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "stream per-trial completions to stderr")
		csvDir   = flag.String("csv", "", "directory to also write per-table CSV files (optional)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var selected []experiment.Experiment
	if *runList == "all" {
		selected = experiment.Registry()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: E1..E11)", id)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	cfg := experiment.Config{Seed: *seed, Scale: *scale}
	for _, e := range selected {
		fmt.Printf("=== %s: %s (scale %.2f, seed %d, workers %d)\n",
			e.ID, e.Title, *scale, *seed, *workers)
		opts := engine.Options{Workers: *workers}
		if *progress {
			opts.Progress = func(p engine.Progress) {
				status := "ok"
				if p.Err != nil {
					status = "FAIL: " + p.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s (%v) %s\n",
					p.Done, p.Total, p.Trial.Key, p.Elapsed.Round(time.Millisecond), status)
			}
		}
		start := time.Now()
		tables, err := e.RunContext(ctx, cfg, opts)
		if err != nil {
			return err
		}
		fmt.Printf("    completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		for ti, tab := range tables {
			if err := tab.Render(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					return fmt.Errorf("creating %s: %w", name, err)
				}
				if err := tab.CSV(f); err != nil {
					f.Close()
					return fmt.Errorf("writing %s: %w", name, err)
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("closing %s: %w", name, err)
				}
			}
		}
	}
	return nil
}
