// Package core is the public face of the reproduction: it ties the
// graph models, the local-knowledge search framework, and the
// vertex-equivalence machinery together into the measurements and
// theorem-level bounds that the paper states.
//
// The three central entry points are:
//
//   - MeasureSearch — expected-request measurement of any search
//     algorithm over replicated random graphs;
//   - MeasureScaling — the same measurement swept over graph sizes,
//     with the scaling exponent fitted on log-log axes;
//   - Theorem1Bound / Theorem2Bound / StrongModelExponent — the paper's
//     lower bounds, evaluated exactly (Móri) or by Monte Carlo
//     (Cooper–Frieze), against which the measurements are compared.
package core

import (
	"context"
	"fmt"

	"scalefree/internal/buf"
	"scalefree/internal/cooperfrieze"
	"scalefree/internal/engine"
	"scalefree/internal/equivalence"
	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/mori"
	"scalefree/internal/obs/trace"
	"scalefree/internal/rng"
	"scalefree/internal/search"
	"scalefree/internal/stats"
)

// Scratch bundles the reusable buffers of one measurement worker: the
// registry-wide model-generation scratches, the search oracle's
// scratch, the per-replication RNGs, and BFS buffers for distance
// measurements. The zero value is ready to use. One scratch belongs to
// one worker goroutine; the engine's RunScratch hands each worker its
// own.
//
// Scratch is memory reuse only — every measurement is still a pure
// function of (spec, rep), so scratch-backed and scratch-free paths
// produce bit-identical outcomes.
type Scratch struct {
	// Model holds the per-family generation buffers of every
	// registered graph model (internal/model), so one worker serves
	// any workload's trials without reallocating.
	Model  model.Scratch
	Search search.Scratch

	// Dist and Queue are BFS buffers for distance-based workloads
	// (graph.BFSInto conventions: Dist needs length n+1).
	Dist  []int32
	Queue []graph.Vertex

	// Par is the frontier-parallel traversal scratch
	// (graph.BFSParallelInto / graph.ComponentsParallelInto) for
	// giant-graph passes. Engine trials should keep their traversals
	// serial — the engine already saturates the cores across trials —
	// but process-wide callers (the CLIs, a future serving tier) run
	// one huge graph at a time and want every core inside the pass.
	Par graph.BFSScratch

	// Degs is the reused degree-sample buffer behind DegreesOf.
	Degs []int

	genRNG, searchRNG rng.RNG

	// tw is the attached trace writer (nil when untraced); phase spans
	// in MeasureOneScratch record into it. See AttachTrace.
	tw *trace.Writer
}

// AttachTrace implements trace.Attacher: the engine hands each worker
// goroutine's trace writer to its scratch, so trial phases
// (generate/freeze/search) and sampled BFS levels record into the
// worker's lane. A nil writer detaches.
func (s *Scratch) AttachTrace(w *trace.Writer) {
	s.tw = w
	s.Par.Trace = w
	s.Par.TraceSample = w.SampleEvery()
}

// NewScratch returns an empty scratch; buffers grow on first use and
// are reused afterwards. It is the engine-facing scratch factory.
func NewScratch() *Scratch { return &Scratch{} }

// BFSBuffers returns the scratch's BFS buffers sized for an n-vertex
// graph (dist length n+1, queue capacity n), growing them on demand.
// BFSInto overwrites dist fully, so plain Grow suffices.
func (s *Scratch) BFSBuffers(n int) ([]int32, []graph.Vertex) {
	s.Dist = buf.Grow(s.Dist, n+1)
	s.Queue = buf.Grow(s.Queue, n)[:0]
	return s.Dist, s.Queue
}

// DegreesOf returns the undirected degree sample of g (vertices 1..n,
// the slice Degrees()[1:] would give) in the scratch's reused buffer.
// The result is only valid until the scratch's next DegreesOf call.
func (s *Scratch) DegreesOf(g *graph.Graph) []int {
	s.Degs = g.AppendDegrees(s.Degs[:0])
	return s.Degs
}

// ParScratch returns the scratch's frontier-parallel traversal state
// for graph.BFSParallelInto-family calls.
func (s *Scratch) ParScratch() *graph.BFSScratch { return &s.Par }

// GraphGen produces a fresh random graph for one replication. The
// scratch argument may be nil (generate with fresh allocations); when
// non-nil, the generator may reuse its buffers, in which case the
// returned graph is only valid until the scratch's next use.
type GraphGen func(r *rng.RNG, s *Scratch) (*graph.Graph, error)

// MoriGen adapts a Móri configuration to a GraphGen.
func MoriGen(cfg mori.Config) GraphGen {
	return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
		if s != nil {
			return cfg.GenerateScratch(r, &s.Model.Mori)
		}
		return cfg.Generate(r)
	}
}

// CooperFriezeGen adapts a Cooper–Frieze configuration to a GraphGen.
func CooperFriezeGen(cfg cooperfrieze.Config) GraphGen {
	return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
		var res *cooperfrieze.Result
		var err error
		if s != nil {
			res, err = cfg.GenerateScratch(r, &s.Model.CF)
		} else {
			res, err = cfg.Generate(r)
		}
		if err != nil {
			return nil, err
		}
		return res.Graph, nil
	}
}

// ModelGen adapts any registry model instance (internal/model) to a
// GraphGen: the measurement paths accept every registered model
// through the worker scratch's model buffers.
func ModelGen(m model.Model) GraphGen {
	return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
		if s != nil {
			return m.Generate(r, &s.Model)
		}
		return m.Generate(r, nil)
	}
}

// SearchSpec describes one search measurement.
type SearchSpec struct {
	Algorithm search.Algorithm
	// Start is the initial vertex; 0 selects vertex 1 (the oldest).
	Start graph.Vertex
	// Target is the sought vertex; 0 selects the youngest vertex n,
	// the paper's hard target.
	Target graph.Vertex
	// RandomStart draws a fresh uniform start vertex per replication
	// (overrides Start). Used by workloads without an age structure,
	// e.g. configuration-model graphs.
	RandomStart bool
	// RandomTarget draws a fresh uniform target per replication,
	// distinct from the start (overrides Target).
	RandomTarget bool
	// Budget caps requests per run (0 = unlimited). Runs that exhaust
	// the budget contribute Budget requests to the mean (censoring
	// makes the measured mean a *lower* bound on the true expectation,
	// which is the safe direction when validating lower bounds).
	Budget int
	// Reps is the number of independent graph+search replications.
	Reps int
	// Seed derives all per-replication randomness.
	Seed uint64
}

func (s SearchSpec) validate() error {
	if s.Algorithm == nil {
		return fmt.Errorf("core: SearchSpec.Algorithm is nil")
	}
	if s.Reps < 1 {
		return fmt.Errorf("core: SearchSpec.Reps = %d < 1", s.Reps)
	}
	return nil
}

// Measurement is the outcome of a replicated search measurement.
type Measurement struct {
	Algorithm string
	Knowledge search.Knowledge
	Requests  stats.Summary // over per-run request counts (censored at Budget)
	FoundRate float64
	// Samples holds the per-replication request counts, for downstream
	// significance tests (e.g. Welch comparisons between algorithms).
	Samples []float64
}

// SearchOutcome is the result of one search replication.
type SearchOutcome struct {
	Requests float64
	Found    bool
}

// MeasureOne runs replication rep of spec: it draws a fresh graph from
// gen and runs the algorithm once. The outcome is a pure function of
// (spec, rep) — graph generation, the search, and the oracle shuffle
// consume the disjoint streams 3·rep, 3·rep+1, 3·rep+2 of spec.Seed,
// so no stream is ever reused across replications or roles — and
// replications can execute in any order, on any goroutine, and still
// reproduce the serial measurement bit for bit.
func MeasureOne(gen GraphGen, spec SearchSpec, rep int) (SearchOutcome, error) {
	return MeasureOneScratch(gen, spec, rep, nil)
}

// MeasureOneScratch is MeasureOne through a worker's reusable scratch:
// the graph, the oracle tables, and the per-replication RNGs all come
// from s, so repeated same-size replications stay allocation-light. A
// nil scratch falls back to fresh allocation; the outcome is
// bit-identical either way.
func MeasureOneScratch(gen GraphGen, spec SearchSpec, rep int, s *Scratch) (SearchOutcome, error) {
	if spec.Algorithm == nil {
		return SearchOutcome{}, fmt.Errorf("core: SearchSpec.Algorithm is nil")
	}
	var gr, sr *rng.RNG
	var tw *trace.Writer
	if s != nil {
		gr, sr = &s.genRNG, &s.searchRNG
		gr.Reseed(rng.DeriveSeed(spec.Seed, uint64(3*rep)))
		sr.Reseed(rng.DeriveSeed(spec.Seed, uint64(3*rep+1)))
		tw = s.tw
	} else {
		gr = rng.New(rng.DeriveSeed(spec.Seed, uint64(3*rep)))
		sr = rng.New(rng.DeriveSeed(spec.Seed, uint64(3*rep+1)))
	}
	tw.Begin("generate", "phase")
	g, err := gen(gr, s)
	tw.End()
	if err != nil {
		return SearchOutcome{}, fmt.Errorf("core: generating graph for rep %d: %w", rep, err)
	}
	start := spec.Start
	if start == 0 {
		start = 1
	}
	if spec.RandomStart {
		start = graph.Vertex(sr.IntRange(1, g.NumVertices()))
	}
	target := spec.Target
	if target == 0 {
		target = graph.Vertex(g.NumVertices())
	}
	if spec.RandomTarget {
		if g.NumVertices() < 2 {
			return SearchOutcome{}, fmt.Errorf("core: rep %d: graph too small for a distinct random target", rep)
		}
		target = graph.Vertex(sr.IntRange(1, g.NumVertices()-1))
		if target >= start {
			target++
		}
	}
	// The shuffled oracle censors slot order so identities leak only
	// through the answers the paper's model defines.
	var oracleScratch *search.Scratch
	if s != nil {
		oracleScratch = &s.Search
	}
	tw.Begin("freeze", "phase")
	o, err := search.NewOracleShuffledScratch(g, start, target, spec.Algorithm.Knowledge(),
		rng.DeriveSeed(spec.Seed, uint64(3*rep+2)), oracleScratch)
	tw.End()
	if err != nil {
		return SearchOutcome{}, fmt.Errorf("core: rep %d: %w", rep, err)
	}
	tw.Begin("search", "phase")
	res, err := spec.Algorithm.Search(o, sr, spec.Budget)
	tw.End()
	if err != nil {
		return SearchOutcome{}, fmt.Errorf("core: rep %d: %w", rep, err)
	}
	return SearchOutcome{Requests: float64(res.Requests), Found: res.Found}, nil
}

// NewMeasurement assembles per-replication outcomes (in replication
// order) into a Measurement. It is the deterministic reduce step shared
// by the serial and parallel measurement paths.
func NewMeasurement(spec SearchSpec, outcomes []SearchOutcome) Measurement {
	requests := make([]float64, len(outcomes))
	found := 0
	for i, o := range outcomes {
		requests[i] = o.Requests
		if o.Found {
			found++
		}
	}
	return Measurement{
		Algorithm: spec.Algorithm.Name(),
		Knowledge: spec.Algorithm.Knowledge(),
		Requests:  stats.Summarize(requests),
		FoundRate: float64(found) / float64(len(outcomes)),
		Samples:   requests,
	}
}

// MeasureSearch runs spec.Reps independent replications serially; see
// MeasureOne for the per-replication contract.
func MeasureSearch(gen GraphGen, spec SearchSpec) (Measurement, error) {
	return MeasureSearchScratch(gen, spec, nil)
}

// MeasureSearchScratch is MeasureSearch reusing a worker scratch
// across the replications (nil falls back to fresh allocation).
func MeasureSearchScratch(gen GraphGen, spec SearchSpec, s *Scratch) (Measurement, error) {
	if err := spec.validate(); err != nil {
		return Measurement{}, err
	}
	outcomes := make([]SearchOutcome, spec.Reps)
	for rep := range outcomes {
		o, err := MeasureOneScratch(gen, spec, rep, s)
		if err != nil {
			return Measurement{}, err
		}
		outcomes[rep] = o
	}
	return NewMeasurement(spec, outcomes), nil
}

// ScalingPoint is one size of a scaling sweep.
type ScalingPoint struct {
	N           int
	Measurement Measurement
	Bound       float64 // theorem lower bound at this size (0 if none)
}

// ScalingResult is a full sweep plus the fitted exponent of
// E[requests] ~ c·n^e.
type ScalingResult struct {
	Algorithm string
	Points    []ScalingPoint
	Fit       stats.ScalingFit
}

// MeasureScaling sweeps MeasureSearch over sizes serially. genFor
// returns the generator for a given n; boundFor (optional) supplies the
// theorem bound recorded next to each point.
func MeasureScaling(sizes []int, genFor func(n int) GraphGen, boundFor func(n int) (float64, error), spec SearchSpec) (ScalingResult, error) {
	return MeasureScalingContext(context.Background(), sizes, genFor, boundFor, spec,
		engine.Options{Workers: 1})
}

// MeasureScalingContext is MeasureScaling on the trial engine: every
// (size, replication) pair and every per-size bound evaluation becomes
// one engine trial (see ScalingSweep for the decomposition and seed
// scheme), executed on opts.Workers goroutines. The reduction is a pure
// function of the positional trial results, so the result is
// bit-identical for every worker count.
func MeasureScalingContext(ctx context.Context, sizes []int, genFor func(n int) GraphGen, boundFor func(n int) (float64, error), spec SearchSpec, opts engine.Options) (ScalingResult, error) {
	var bf func(n int, r *rng.RNG) (float64, error)
	if boundFor != nil {
		bf = func(n int, _ *rng.RNG) (float64, error) { return boundFor(n) }
	}
	sweep, err := NewScalingSweep(sizes, genFor, bf, spec)
	if err != nil {
		return ScalingResult{}, err
	}
	st := sweep.Trials()
	trials := make([]engine.Trial, len(st))
	for i, t := range st {
		trials[i] = engine.Trial{Index: i, Key: spec.Algorithm.Name() + "/" + t.Key, Seed: t.Seed}
	}
	results, err := engine.RunScratch(ctx, trials, opts, NewScratch,
		func(_ context.Context, t engine.Trial, r *rng.RNG, s *Scratch) (any, error) {
			return st[t.Index].Run(r, s)
		})
	if err != nil {
		return ScalingResult{}, err
	}
	return sweep.Collect(results)
}

// Theorem1Bound returns the paper's Theorem-1 lower bound on the
// expected number of weak-model requests to find vertex n in the Móri
// model with parameter p: |V|·P(E_{a,b})/2 with the canonical window
// and the exact event probability. The bound is Ω(√n) because
// P(E) >= e^{-(1-p)} (Lemma 3).
func Theorem1Bound(n int, p float64) (float64, error) {
	return equivalence.Lemma1Bound(n, p)
}

// StrongModelExponent returns the exponent of the paper's Theorem-1
// strong-model bound Ω(n^{1/2-p-ε}), i.e. max(0, 1/2 - p). It is
// non-trivial only for p < 1/2, the regime where the Móri maximum
// degree n^p stays below the √n equivalence-set size.
func StrongModelExponent(p float64) float64 {
	if e := 0.5 - p; e > 0 {
		return e
	}
	return 0
}

// Theorem2Bound returns the Theorem-2 lower bound for a Cooper–Frieze
// configuration (target = youngest vertex n = cfg.N), with the event
// probability estimated from mcReps Monte-Carlo generations.
func Theorem2Bound(cfg cooperfrieze.Config, mcReps int, seed uint64) (float64, error) {
	bound, _, _, err := equivalence.Lemma1BoundCF(rng.New(seed), cfg, mcReps)
	return bound, err
}

// AdamicGreedyExponent returns 2(1 - 2/k), the Adamic et al. scaling
// exponent of high-degree search on power-law graphs with exponent k,
// and AdamicWalkExponent returns 3(1 - 2/k) for the random walk. Both
// require 2 < k < 3 to be meaningful.
func AdamicGreedyExponent(k float64) float64 { return 2 * (1 - 2/k) }

// AdamicWalkExponent returns the Adamic et al. random-walk exponent;
// see AdamicGreedyExponent.
func AdamicWalkExponent(k float64) float64 { return 3 * (1 - 2/k) }
