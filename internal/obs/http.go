// The HTTP ops plane: the handler a coordinator or worker serves under
// -status-addr. Endpoints:
//
//	/            tiny index linking the others
//	/healthz     200 "ok" — liveness for load balancers and smoke jobs
//	/metrics     Prometheus text exposition of a registry
//	/status      JSON snapshot of the process's sweep state; append
//	             ?format=html (or send Accept: text/html) for a
//	             human-readable rendering that auto-refreshes
//	/debug/pprof pprof profiles, only when enabled (-pprof)
//
// The ops plane is strictly read-only and strictly outside the
// determinism boundary: handlers only snapshot state, never mutate it.
package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// StatusFunc builds the /status payload: any JSON-marshalable value,
// snapshotted per request. It must be safe for concurrent use.
type StatusFunc func() any

// NewOpsHandler assembles the ops mux over reg and status. A nil
// status serves a minimal {"status":"up"} payload; enablePprof mounts
// net/http/pprof under /debug/pprof/.
func NewOpsHandler(reg *Registry, status StatusFunc, enablePprof bool) http.Handler {
	if status == nil {
		status = func() any { return map[string]string{"status": "up"} }
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		reg.WriteText(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		v := status()
		if wantsHTML(r) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeStatusHTML(w, v, enablePprof)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			http.Error(w, fmt.Sprintf("marshaling status: %v", err), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<!doctype html><title>scalefree ops</title><h1>scalefree ops</h1><ul>`+
			`<li><a href="/status?format=html">status</a></li>`+
			`<li><a href="/metrics">metrics</a></li>`+
			`<li><a href="/healthz">healthz</a></li>`)
		if enablePprof {
			fmt.Fprint(w, `<li><a href="/debug/pprof/">pprof</a></li>`)
		}
		fmt.Fprint(w, `</ul>`)
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func wantsHTML(r *http.Request) bool {
	if r.URL.Query().Get("format") == "html" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/html")
}

// writeStatusHTML renders the status payload for humans: the JSON
// structure re-marshaled and walked into nested tables with sorted
// keys, auto-refreshing so a sweep can be watched live.
func writeStatusHTML(w http.ResponseWriter, v any, pprofOn bool) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf("marshaling status: %v", err), http.StatusInternalServerError)
		return
	}
	var generic any
	if err := json.Unmarshal(data, &generic); err != nil {
		http.Error(w, fmt.Sprintf("re-reading status: %v", err), http.StatusInternalServerError)
		return
	}
	fmt.Fprint(w, `<!doctype html><meta http-equiv="refresh" content="2">`+
		`<title>scalefree status</title>`+
		`<style>body{font-family:monospace}table{border-collapse:collapse;margin:2px 0 2px 1em}`+
		`td,th{border:1px solid #999;padding:2px 6px;text-align:left;vertical-align:top}</style>`+
		`<h1>scalefree status</h1>`)
	writeHTMLValue(w, generic)
	fmt.Fprint(w, `<p><a href="/metrics">metrics</a> · <a href="/status">json</a>`)
	if pprofOn {
		fmt.Fprint(w, ` · <a href="/debug/pprof/">pprof</a>`)
	}
	fmt.Fprint(w, `</p>`)
}

func writeHTMLValue(w http.ResponseWriter, v any) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "<table>")
		for _, k := range keys {
			fmt.Fprintf(w, "<tr><th>%s</th><td>", html.EscapeString(k))
			writeHTMLValue(w, t[k])
			fmt.Fprint(w, "</td></tr>")
		}
		fmt.Fprint(w, "</table>")
	case []any:
		for _, e := range t {
			writeHTMLValue(w, e)
		}
		if len(t) == 0 {
			fmt.Fprint(w, "—")
		}
	case nil:
		fmt.Fprint(w, "—")
	case json.Number, float64, bool:
		fmt.Fprintf(w, "%v", t)
	default:
		fmt.Fprint(w, html.EscapeString(fmt.Sprintf("%v", t)))
	}
}

// OpsServer is one running ops listener.
type OpsServer struct {
	lis net.Listener
	srv *http.Server
}

// StartOps listens on addr and serves h in a background goroutine.
// addr may use port 0; Addr reports the bound address.
func StartOps(addr string, h http.Handler) (*OpsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: status listener on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(lis)
	return &OpsServer{lis: lis, srv: srv}, nil
}

// Addr reports the bound listen address.
func (s *OpsServer) Addr() string { return s.lis.Addr().String() }

// Close tears the listener and all connections down.
func (s *OpsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
