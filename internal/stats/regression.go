package stats

import (
	"fmt"
	"math"
)

// LineFit is an ordinary least-squares straight-line fit y = a + b·x.
type LineFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	SlopeSE   float64 // standard error of the slope
	N         int
}

// FitLine fits y = a + b·x by ordinary least squares. It panics when
// the inputs differ in length or hold fewer than two points.
func FitLine(x, y []float64) LineFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: FitLine length mismatch %d != %d", len(x), len(y)))
	}
	n := len(x)
	if n < 2 {
		panic("stats: FitLine needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: FitLine with zero variance in x")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	fit := LineFit{Slope: slope, Intercept: intercept, N: n}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and perfectly predicted
	}
	if n > 2 {
		var sse float64
		for i := range x {
			resid := y[i] - (intercept + slope*x[i])
			sse += resid * resid
		}
		fit.SlopeSE = math.Sqrt(sse / float64(n-2) / sxx)
	}
	return fit
}

// ScalingFit estimates c and the exponent e in y ≈ c·n^e from paired
// observations by regressing log y on log n. All inputs must be
// positive.
type ScalingFit struct {
	Exponent   float64 // e
	ExponentSE float64
	Coeff      float64 // c
	R2         float64
}

// FitScaling fits y = c·n^e on log-log axes. It returns an error when
// fewer than two valid (positive) pairs exist.
func FitScaling(ns, ys []float64) (ScalingFit, error) {
	if len(ns) != len(ys) {
		return ScalingFit{}, fmt.Errorf("stats: FitScaling length mismatch %d != %d", len(ns), len(ys))
	}
	var lx, ly []float64
	for i := range ns {
		if ns[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(ns[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return ScalingFit{}, fmt.Errorf("stats: FitScaling has %d usable pairs; need at least 2", len(lx))
	}
	line := FitLine(lx, ly)
	return ScalingFit{
		Exponent:   line.Slope,
		ExponentSE: line.SlopeSE,
		Coeff:      math.Exp(line.Intercept),
		R2:         line.R2,
	}, nil
}
