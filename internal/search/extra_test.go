package search

import (
	"strings"
	"testing"

	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

func TestExtraAlgorithmsFindTargets(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(8), 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	extras := []Algorithm{
		NewTwoPhase(),
		NewBiasedWalk(1),
		NewBiasedWalk(0),
		NewBiasedWalk(-1),
		NewMixedGreedy(0),
		NewMixedGreedy(0.5),
		NewMixedGreedy(1),
	}
	for _, a := range extras {
		t.Run(a.Name(), func(t *testing.T) {
			budget := 0
			if strings.HasPrefix(a.Name(), "biased-walk") {
				budget = 200000
			}
			res := runOn(t, a, g, 1, 500, 21, budget)
			if !res.Found {
				t.Fatalf("%s failed on a connected tree", a.Name())
			}
		})
	}
}

func TestTwoPhaseOnStar(t *testing.T) {
	// Start at a leaf: phase one requests the leaf then the hub; the
	// target becomes visible with the hub's answer — 2 requests, like
	// pure degree greedy.
	g := starGraph(40)
	res := runOn(t, NewTwoPhase(), g, 2, 30, 5, 0)
	if res.Requests != 2 {
		t.Errorf("two-phase on star took %d requests, want 2", res.Requests)
	}
}

func TestMixedGreedyEpsilonClamped(t *testing.T) {
	if got := NewMixedGreedy(-1).Name(); got != "mixed-greedy(0.00)" {
		t.Errorf("eps clamp low: %s", got)
	}
	if got := NewMixedGreedy(7).Name(); got != "mixed-greedy(1.00)" {
		t.Errorf("eps clamp high: %s", got)
	}
}

func TestMixedGreedyExtremesMatchPureGreedy(t *testing.T) {
	// eps = 0 is exactly id-greedy; eps = 1 is exactly degree-greedy
	// (modulo identical tie-breaking, which both share).
	tree, err := mori.GenerateTree(rng.New(12), 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	idOnly := runOn(t, NewMixedGreedy(0), g, 1, 400, 5, 0)
	pureID := runOn(t, NewIDGreedyWeak(), g, 1, 400, 5, 0)
	if idOnly.Requests != pureID.Requests {
		t.Errorf("mixed(0) = %d requests, id-greedy = %d", idOnly.Requests, pureID.Requests)
	}
	degOnly := runOn(t, NewMixedGreedy(1), g, 1, 400, 5, 0)
	pureDeg := runOn(t, NewDegreeGreedyWeak(), g, 1, 400, 5, 0)
	if degOnly.Requests != pureDeg.Requests {
		t.Errorf("mixed(1) = %d requests, degree-greedy = %d", degOnly.Requests, pureDeg.Requests)
	}
}

func TestBiasedWalkZeroBiasMatchesUniformWalkDistribution(t *testing.T) {
	// bias = 0 behaves like the uniform strong walk in expectation;
	// check the two stay within a factor 2 over replications on the
	// same graph.
	tree, err := mori.GenerateTree(rng.New(14), 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	var flat, uniform int
	const reps = 30
	for i := uint64(0); i < reps; i++ {
		flat += runOn(t, NewBiasedWalk(0), g, 1, 300, 100+i, 100000).Requests
		uniform += runOn(t, NewRandomWalkStrong(), g, 1, 300, 100+i, 100000).Requests
	}
	lo, hi := float64(uniform)/2, float64(uniform)*2
	if f := float64(flat); f < lo || f > hi {
		t.Errorf("biased-walk(0) total %d vs uniform strong walk %d", flat, uniform)
	}
}

func TestBiasedWalkBudget(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(16), 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	res := runOn(t, NewBiasedWalk(1), g, 1, 1000, 3, 4)
	if res.Requests > 4 {
		t.Errorf("budget overspent: %d", res.Requests)
	}
}

func TestExtraAlgorithmsModelEnforcement(t *testing.T) {
	g := pathGraph(4)
	weakOracle, err := NewOracle(g, 1, 4, Weak)
	if err != nil {
		t.Fatal(err)
	}
	strongOracle, err := NewOracle(g, 1, 4, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTwoPhase().Search(weakOracle, rng.New(1), 5); err == nil {
		t.Error("two-phase accepted weak oracle")
	}
	if _, err := NewBiasedWalk(1).Search(weakOracle, rng.New(1), 5); err == nil {
		t.Error("biased walk accepted weak oracle")
	}
	if _, err := NewMixedGreedy(0.5).Search(strongOracle, rng.New(1), 5); err == nil {
		t.Error("mixed greedy accepted strong oracle")
	}
}

func TestSampleIndexProportions(t *testing.T) {
	r := rng.New(5)
	counts := [3]int{}
	const draws = 90000
	for i := 0; i < draws; i++ {
		counts[sampleIndex(r, []float64{1, 2, 3})]++
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / draws
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("P(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestPowWeight(t *testing.T) {
	cases := []struct {
		d    int
		bias float64
		want float64
	}{
		{4, 0, 1}, {4, 1, 4}, {4, -1, 0.25}, {4, 2, 16}, {0, 1, 1}, {3, 0.5, 1.7320508075688772},
	}
	for _, tc := range cases {
		if got := powWeight(tc.d, tc.bias); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("powWeight(%d, %v) = %v, want %v", tc.d, tc.bias, got, tc.want)
		}
	}
}
