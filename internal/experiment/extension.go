package experiment

import (
	"context"
	"fmt"

	"scalefree/internal/core"
	"scalefree/internal/equivalence"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

// PlanE11 is the extension experiment suggested by the paper's closing
// remark ("the technique we used seems broad enough to be adapted to
// other models of growing random graphs"): pure uniform attachment
// (p = 0, the random recursive tree), which lies outside the paper's
// 0 < p <= 1 range. The same equivalence window applies with exact
// P(E_{a,b}) → e^{-1}, so the Ω(√n) non-searchability carries over —
// and the measurements confirm it.
func PlanE11(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)
	b := newPlanBuilder()

	probNs := []int{1 << 8, 1 << 10, 1 << 12}
	probIdx := make([]int, len(probNs))
	for i, n := range probNs {
		probIdx[i] = b.add(fmt.Sprintf("E11a/n=%d", n), cfg.seed(1090+uint64(i)),
			func(_ context.Context, _ *rng.RNG) (any, error) {
				a, bw, err := equivalence.Window(n)
				if err != nil {
					return nil, err
				}
				exact, err := equivalence.ExactEventProb(0, a, bw)
				if err != nil {
					return nil, err
				}
				return WindowProbResult{A: a, B: bw, Exact: exact}, nil
			})
	}

	type cell struct {
		alg     search.Algorithm
		collect cellCollector
	}
	var cells []cell
	stream := uint64(1100)
	for _, alg := range search.WeakAlgorithms() {
		stream++
		spec := core.SearchSpec{
			Algorithm: alg,
			Reps:      reps,
			Seed:      cfg.seed(stream),
		}
		if isWalk(alg) {
			spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
		}
		collect := addScalingCell(b,
			fmt.Sprintf("E11/%s", alg.Name()), sizes,
			func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: 1, P: 0}) },
			exactBound(func(n int) (float64, error) { return core.Theorem1Bound(n, 0) }),
			spec)
		cells = append(cells, cell{alg: alg, collect: collect})
	}

	return b.build(func(results []any) ([]Table, error) {
		probs := &Table{
			Title:   "E11a  Extension p=0 (uniform attachment): equivalence event probability",
			Columns: []string{"n", "a", "b", "exact P(E)", "e^{-1} floor", "holds"},
		}
		floor := equivalence.Lemma3Bound(0)
		for i, n := range probNs {
			pr, ok := results[probIdx[i]].(WindowProbResult)
			if !ok {
				return nil, fmt.Errorf("E11a n=%d: result type %T", n, results[probIdx[i]])
			}
			probs.AddRow(n, pr.A, pr.B, pr.Exact, floor, fmt.Sprintf("%v", pr.Exact >= floor-1e-12))
		}

		table := &Table{
			Title: "E11b  Extension p=0: weak-model search cost on random recursive trees",
			Columns: []string{"algorithm", "n(max)", "mean@max", "bound@max",
				"fit-exponent", "±se", "found-rate"},
			Notes: []string{
				"conjecture (paper's closing remark): exponent >= 0.5 persists at p = 0",
				fmt.Sprintf("sizes %v, %d reps per point", sizes, reps),
			},
		}
		for _, c := range cells {
			res, err := c.collect(results)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", c.alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			table.AddRow(c.alg.Name(), last.N,
				last.Measurement.Requests.Mean, last.Bound,
				res.Fit.Exponent, res.Fit.ExponentSE,
				last.Measurement.FoundRate)
		}
		return []Table{*probs, *table}, nil
	}), nil
}
