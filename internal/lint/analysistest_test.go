package lint

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the fixture harness, shaped like
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<name> (GOPATH layout, so fixtures import each
// other by directory name), and expected findings are declared inline
// with trailing comments of the form
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic must be matched by a want on its line, and every
// want must match a diagnostic — drift in either direction fails the
// test.

// RunFixture loads testdata/src/<fixture> and runs the analyzers over
// it, checking the findings against the fixture's want comments. The
// full pipeline runs, so fixtures can also exercise //sflint:ignore
// suppression.
func RunFixture(t *testing.T, fixture string, analyzers ...*Analyzer) *Result {
	t.Helper()
	loader := NewLoader("testdata/src", "")
	pkg, err := loader.LoadPackage(fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	res, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running %s: %v", fixture, err)
	}
	checkWants(t, pkg, res.All())
	return res
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants parses the fixture's // want comments.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos.String(), rest) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses the sequence of quoted regexps after "want".
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: want expects quoted regexps, got %q", pos, s)
		}
		var lit string
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == s[0] && (s[0] == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		lit = s[:end+1]
		s = strings.TrimSpace(s[end+1:])
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
		}
		out = append(out, unq)
	}
	return out
}

// checkWants matches findings against want comments, both ways.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// fixtureError loads a fixture expecting a load-time error (malformed
// annotations) and returns it.
func fixtureError(t *testing.T, fixture string) error {
	t.Helper()
	loader := NewLoader("testdata/src", "")
	_, err := loader.LoadPackage(fixture)
	if err == nil {
		t.Fatalf("fixture %s: expected a load error, got none", fixture)
	}
	return err
}
