package experiment

import (
	"bytes"
	"context"
	"testing"

	"scalefree/internal/engine"
)

// renderAll renders every table of an experiment run into one string,
// the byte-level artifact the determinism contract is stated over.
func renderAll(t *testing.T, tables []Table) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range tables {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tab.CSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestWorkersOutputInvariance is the engine's core guarantee at the
// experiment level: for the same Config, -workers N renders tables
// byte-identical to -workers 1. E5 exercises per-replication trials,
// E4 Monte-Carlo trials with per-trial RNGs, E7 shared-nothing
// generation trials, E3 the RNG-consuming Monte-Carlo bound trials,
// E8 a reduce that joins samples across cells (Welch test), and
// E12/E13 the registry-driven model batteries.
func TestWorkersOutputInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	cfg := Config{Seed: 2024, Scale: 0.05}
	for _, id := range []string{"E3", "E4", "E5", "E7", "E8", "E12", "E13"} {
		t.Run(id, func(t *testing.T) {
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			serialTables, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			serial := renderAll(t, serialTables)
			for _, workers := range []int{4, 13} {
				parallelTables, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if parallel := renderAll(t, parallelTables); parallel != serial {
					t.Errorf("workers=%d output diverges from workers=1:\n--- workers=%d ---\n%s\n--- workers=1 ---\n%s",
						workers, workers, parallel, serial)
				}
			}
		})
	}
}

// TestRunMatchesRunContextSerial pins the convenience wrapper to the
// engine path.
func TestRunMatchesRunContextSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E5")
	cfg := Config{Seed: 7, Scale: 0.05}
	a, err := exp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(t, a) != renderAll(t, b) {
		t.Error("Run and RunContext(workers=1) disagree")
	}
}

// TestRunContextCancellation verifies a cancelled context aborts an
// experiment run instead of silently producing tables.
func TestRunContextCancellation(t *testing.T) {
	exp, _ := ByID("E5")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := exp.RunContext(ctx, Config{Seed: 1, Scale: 0.05}, engine.Options{Workers: 2}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
