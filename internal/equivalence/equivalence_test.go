package equivalence

import (
	"math"
	"testing"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

func TestCheckEvent(t *testing.T) {
	// Tree: 2→1, 3→1, 4→2, 5→4. Window (2, 4]: fathers of 3, 4 are
	// 1, 2 — both <= 2, so E holds. Window (3, 5]: father of 5 is 4 > 3.
	tree := &mori.Tree{P: 0.5, Fathers: []graph.Vertex{0, 0, 1, 1, 2, 4}}
	ok, err := CheckEvent(tree, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("E_{2,4} should hold")
	}
	ok, err = CheckEvent(tree, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("E_{3,5} should fail (father of 5 is 4)")
	}
}

func TestCheckEventValidation(t *testing.T) {
	tree := &mori.Tree{P: 0.5, Fathers: []graph.Vertex{0, 0, 1}}
	if _, err := CheckEvent(tree, 0, 1); err == nil {
		t.Error("a = 0 accepted")
	}
	if _, err := CheckEvent(tree, 2, 1); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := CheckEvent(tree, 1, 5); err == nil {
		t.Error("window past tree size accepted")
	}
}

func TestExactEventProbAgainstEnumeration(t *testing.T) {
	// Brute-force P(E_{a,b}) by enumerating all trees of size b and
	// summing probabilities of those satisfying the event; compare with
	// the product formula.
	for _, tc := range []struct {
		p    float64
		a, b int
	}{
		{0.5, 2, 5}, {0.5, 3, 6}, {0.3, 2, 6}, {1.0, 3, 7}, {0.8, 1, 5},
	} {
		want := 0.0
		err := mori.EnumerateTrees(tc.b, func(fathers []graph.Vertex) {
			tree := &mori.Tree{P: tc.p, Fathers: fathers}
			ok, err := CheckEvent(tree, tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				prob, err := mori.TreeProb(fathers, tc.p)
				if err != nil {
					t.Fatal(err)
				}
				want += prob
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactEventProb(tc.p, tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("p=%v window (%d,%d]: formula %v, enumeration %v", tc.p, tc.a, tc.b, got, want)
		}
	}
}

func TestExactEventProbMatchesMonteCarlo(t *testing.T) {
	p := 0.5
	a, b := 50, 57 // window of size 7 = isqrt(49)
	exact, err := ExactEventProb(p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	est, se, err := MonteCarloEventProb(rng.New(31), p, a, b, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 4*se+0.01 {
		t.Errorf("MC estimate %v ± %v vs exact %v", est, se, exact)
	}
}

func TestLemma3BoundHolds(t *testing.T) {
	// For the canonical window b = a + ⌊√(a-1)⌋, the exact probability
	// must sit above e^{-(1-p)} for every p and a — Lemma 3.
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		floor := Lemma3Bound(p)
		for _, a := range []int{2, 5, 10, 100, 1000, 100000} {
			b := a + isqrt(a-1)
			prob, err := ExactEventProb(p, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if prob < floor-1e-12 {
				t.Errorf("p=%v a=%d: P(E) = %v below Lemma-3 floor %v", p, a, prob, floor)
			}
		}
	}
	if Lemma3Bound(1) != 1 {
		t.Error("Lemma3Bound(1) should be 1 (pure preferential)")
	}
}

func TestWindow(t *testing.T) {
	a, b, err := Window(101)
	if err != nil {
		t.Fatal(err)
	}
	if a != 100 || b != 100+isqrt(99) {
		t.Errorf("Window(101) = (%d, %d)", a, b)
	}
	if _, _, err := Window(2); err == nil {
		t.Error("Window(2) accepted")
	}
}

func TestWindowEndingAt(t *testing.T) {
	a, err := WindowEndingAt(100)
	if err != nil {
		t.Fatal(err)
	}
	if a != 100-isqrt(99) {
		t.Errorf("WindowEndingAt(100) = %d", a)
	}
	if _, err := WindowEndingAt(2); err == nil {
		t.Error("WindowEndingAt(2) accepted")
	}
}

func TestIsqrt(t *testing.T) {
	for x := 0; x <= 10000; x++ {
		r := isqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("isqrt(%d) = %d", x, r)
		}
	}
	if isqrt(-5) != 0 {
		t.Error("isqrt of negative should be 0")
	}
}

func TestLemma1BoundScalesAsSqrtN(t *testing.T) {
	// |V|·P(E)/2 with |V| = Θ(√n) and P(E) >= e^{-(1-p)} must grow like
	// √n: check the ratio bound(4n)/bound(n) ≈ 2.
	p := 0.5
	b1, err := Lemma1Bound(10000, p)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Lemma1Bound(40000, p)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := b2 / b1; math.Abs(ratio-2) > 0.05 {
		t.Errorf("bound(40000)/bound(10000) = %v, want ≈2", ratio)
	}
	// And the bound itself is at least e^{-(1-p)}·√n/2 up to the floor
	// of the window size.
	if b1 < Lemma3Bound(p)*float64(isqrt(9998))/2-1e-9 {
		t.Errorf("Lemma1Bound(10000) = %v below its analytic floor", b1)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, _, err := MonteCarloEventProb(rng.New(1), 0.5, 5, 8, 0); err == nil {
		t.Error("zero reps accepted")
	}
	if _, _, err := MonteCarloEventProb(rng.New(1), 0.5, 0, 8, 10); err == nil {
		t.Error("bad window accepted")
	}
}

func TestCheckEventCF(t *testing.T) {
	cfg := cooperfrieze.Config{N: 400, Alpha: 0.8, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true}
	res, err := cfg.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := WindowEndingAt(cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	// The event may or may not hold on this draw; just exercise both
	// the checker and its validation.
	if _, err := CheckEventCF(res, a, cfg.N); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEventCF(res, a, cfg.N-1); err == nil {
		t.Error("b != NumVertices accepted")
	}
}

func TestCFEventProbabilityIsSubstantial(t *testing.T) {
	// Theorem 2 rests on P(E) being bounded away from 0. With mostly
	// uniform attachment and one edge per step the event should occur
	// with clearly positive frequency at moderate n.
	cfg := cooperfrieze.Config{N: 300, Alpha: 0.9, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true}
	a, err := WindowEndingAt(cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	est, se, err := MonteCarloEventProbCF(rng.New(7), cfg, a, 400)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0.05 {
		t.Errorf("CF event probability %v ± %v suspiciously small", est, se)
	}
}

func TestLemma1BoundCF(t *testing.T) {
	cfg := cooperfrieze.Config{N: 300, Alpha: 0.9, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true}
	bound, a, prob, err := Lemma1BoundCF(rng.New(11), cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if a >= cfg.N || prob < 0 || prob > 1 {
		t.Fatalf("bound=%v a=%d prob=%v", bound, a, prob)
	}
	if want := float64(cfg.N-a) * prob / 2; math.Abs(bound-want) > 1e-12 {
		t.Errorf("bound %v inconsistent with |V|P(E)/2 = %v", bound, want)
	}
}
