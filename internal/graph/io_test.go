package graph

import (
	"bytes"
	"strings"
	"testing"

	"scalefree/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(4, 5)
	b.AddVertices(4)
	b.AddEdge(2, 1)
	b.AddEdge(3, 1)
	b.AddEdge(3, 3)
	b.AddEdge(4, 2)
	b.AddEdge(4, 2)
	g := b.Freeze()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, got) {
		t.Fatal("round trip changed the graph")
	}
}

func TestEdgeListRoundTripRandom(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 20; trial++ {
		n := r.IntRange(1, 50)
		m := r.Intn(100)
		b := NewBuilder(n, m)
		b.AddVertices(n)
		for i := 0; i < m; i++ {
			b.AddEdge(Vertex(r.IntRange(1, n)), Vertex(r.IntRange(1, n)))
		}
		g := b.Freeze()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(g, got) {
			t.Fatalf("trial %d: round trip changed the graph", trial)
		}
	}
}

func TestEdgeListPreservesIsolatedVertices(t *testing.T) {
	b := NewBuilder(7, 1)
	b.AddVertices(7)
	b.AddEdge(1, 2)
	g := b.Freeze()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 7 {
		t.Fatalf("vertices = %d, want 7", got.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad magic", "nope\nn 1 m 0\n"},
		{"bad sizes", "# scalefree edgelist v1\nn x m y\n"},
		{"negative sizes", "# scalefree edgelist v1\nn -1 m 0\n"},
		{"truncated edges", "# scalefree edgelist v1\nn 2 m 2\n1 2\n"},
		{"edge out of range", "# scalefree edgelist v1\nn 2 m 1\n1 3\n"},
		{"zero endpoint", "# scalefree edgelist v1\nn 2 m 1\n0 1\n"},
		{"garbage edge", "# scalefree edgelist v1\nn 2 m 1\nonetwo\n"},
		{"garbage tail", "# scalefree edgelist v1\nn 2 m 1\nx 2\n"},
		{"garbage head", "# scalefree edgelist v1\nn 2 m 1\n1 y\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("ReadEdgeList(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestEqual(t *testing.T) {
	a := buildPath(3)
	if !Equal(a, buildPath(3)) {
		t.Error("identical graphs reported unequal")
	}
	if Equal(a, buildPath(4)) {
		t.Error("different sizes reported equal")
	}
	b := NewBuilder(3, 2)
	b.AddVertices(3)
	b.AddEdge(2, 3)
	b.AddEdge(1, 2)
	if Equal(a, b.Freeze()) {
		t.Error("different edge order reported equal")
	}
}
