package lint

import "testing"

func TestHotPathFixture(t *testing.T) {
	RunFixture(t, "hotpath", HotPath)
}
