package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the full text exposition of a registry
// holding every metric kind: stable name ordering, label-value
// ordering, escaping, and histogram bucket cumulativity are all
// byte-exact.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "last by name").Add(7)
	r.Gauge("b_gauge", "a gauge").Set(-3)
	r.GaugeFunc("c_func", "computed", func() float64 { return 2.5 })
	h := r.Histogram("a_hist", `histogram with "quotes" and \slash`, []float64{0.1, 1, 10})
	h.Observe(0.05) // bucket le=0.1
	h.Observe(0.5)  // bucket le=1
	h.Observe(0.5)  // bucket le=1
	h.Observe(100)  // overflow, +Inf only
	v := r.CounterVec("d_vec_total", "labeled", "worker")
	v.With("w2").Add(2)
	v.With(`w"1\x`).Inc() // escaping in a label value; sorts first
	hv := r.HistogramVec("e_hv_seconds", "labeled hist", "exp", []float64{1})
	hv.With("E4").Observe(0.5)
	hv.With("E4").Observe(3)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_hist histogram with "quotes" and \\slash
# TYPE a_hist histogram
a_hist_bucket{le="0.1"} 1
a_hist_bucket{le="1"} 3
a_hist_bucket{le="10"} 3
a_hist_bucket{le="+Inf"} 4
a_hist_sum 101.05
a_hist_count 4
# HELP b_gauge a gauge
# TYPE b_gauge gauge
b_gauge -3
# HELP c_func computed
# TYPE c_func gauge
c_func 2.5
# HELP d_vec_total labeled
# TYPE d_vec_total counter
d_vec_total{worker="w\"1\\x"} 1
d_vec_total{worker="w2"} 2
# HELP e_hv_seconds labeled hist
# TYPE e_hv_seconds histogram
e_hv_seconds_bucket{exp="E4",le="1"} 1
e_hv_seconds_bucket{exp="E4",le="+Inf"} 2
e_hv_seconds_sum{exp="E4"} 3.5
e_hv_seconds_count{exp="E4"} 2
# HELP z_total last by name
# TYPE z_total counter
z_total 7
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Two scrapes of unchanged state are byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Error("repeated scrape of unchanged state differs")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "one")
	c1.Inc()
	c2 := r.Counter("x_total", "two (ignored)")
	if c1 != c2 {
		t.Error("re-registering a counter returned a different instance")
	}
	if c2.Value() != 1 {
		t.Errorf("shared counter lost state: %d", c2.Value())
	}
	// Kind mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestInvalidMetricName(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestNilSafety: every method on a nil metric is a no-op, so unwired
// instrumentation points need no guards.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	_ = g.Value()
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	_ = h.Count()
	var cv *CounterVec
	cv.With("x").Inc()
	var hv *HistogramVec
	hv.With("x").Observe(1)
	var l *EventLog
	l.Emit(Event{Event: "noop"})
	if l.Err() != nil || l.Close() != nil {
		t.Error("nil event log reported an error")
	}
}

// TestHistogramBucketEdges pins inclusive upper bounds: an observation
// exactly on a bound lands in that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram(desc{name: "h"}, []float64{1, 2})
	h.Observe(1) // le=1
	h.Observe(2) // le=2
	h.Observe(3) // +Inf
	for i, want := range []int64{1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

// TestMetricsRace hammers every metric kind from NumCPU goroutines
// while a scraper renders the exposition — the -race pass for the
// atomic hot paths and the scrape snapshotting.
func TestMetricsRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	g := r.Gauge("race_gauge", "")
	h := r.Histogram("race_seconds", "", nil)
	v := r.CounterVec("race_vec_total", "", "worker")
	hv := r.HistogramVec("race_hv_seconds", "", "exp", []float64{0.5})
	r.GaugeFunc("race_func", "", func() float64 { return float64(c.Value()) })

	const perG = 2000
	n := runtime.NumCPU()
	var writers sync.WaitGroup
	for i := 0; i < n; i++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			worker := string(rune('a' + id%8))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) * 1e-4)
				v.With(worker).Inc()
				hv.With("E1").Observe(0.25)
			}
		}(i)
	}
	// Scrape concurrently until every writer has finished.
	done := make(chan struct{})
	go func() { writers.Wait(); close(done) }()
	scraping := true
	for scraping {
		select {
		case <-done:
			scraping = false
		default:
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}

	if got := c.Value(); got != int64(n*perG) {
		t.Errorf("counter = %d, want %d", got, n*perG)
	}
	if got := h.Count(); got != int64(n*perG) {
		t.Errorf("histogram count = %d, want %d", got, n*perG)
	}
}

// TestHistogramVecLabelCardinality: a vec keeps one isolated child per
// label value — repeated With returns the same instance, observations
// never bleed across children, and the exposition renders exactly one
// bucket series set per value, sorted by label value.
func TestHistogramVecLabelCardinality(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("card_seconds", "cardinality", "exp", []float64{1})
	const n = 64
	children := make(map[string]*Histogram, n)
	for i := 0; i < n; i++ {
		lv := fmt.Sprintf("E%02d", i)
		h := hv.With(lv)
		if h == nil {
			t.Fatalf("With(%q) returned nil", lv)
		}
		if prev, ok := children[lv]; ok && prev != h {
			t.Fatalf("With(%q) returned a second instance", lv)
		}
		children[lv] = h
		for j := 0; j <= i; j++ {
			h.Observe(0.5)
		}
	}
	// Stability: a second round of With hits the same children.
	for lv, h := range children {
		if hv.With(lv) != h {
			t.Errorf("With(%q) no longer returns the original child", lv)
		}
	}
	// Isolation: each child holds exactly its own observations.
	for i := 0; i < n; i++ {
		lv := fmt.Sprintf("E%02d", i)
		if got := children[lv].Count(); got != int64(i+1) {
			t.Errorf("child %q count = %d, want %d", lv, got, i+1)
		}
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	var countLines []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "card_seconds_count{") {
			countLines = append(countLines, line)
		}
	}
	if len(countLines) != n {
		t.Fatalf("exposition has %d _count series, want %d", len(countLines), n)
	}
	if !sort.StringsAreSorted(countLines) {
		t.Error("_count series not sorted by label value")
	}
	if want := fmt.Sprintf(`card_seconds_count{exp="E%02d"} %d`, n-1, n); countLines[n-1] != want {
		t.Errorf("last series = %q, want %q", countLines[n-1], want)
	}
}

// TestInfoMetricExposition pins the info pattern: a constant gauge 1
// whose labels render in registration order with full escaping.
func TestInfoMetricExposition(t *testing.T) {
	r := NewRegistry()
	r.Info("thing_build_info", "identity", [][2]string{
		{"version", "(devel)"},
		{"revision", `abc"def\x`},
	})
	r.Info("thing_build_info", "second registration is ignored", [][2]string{{"version", "other"}})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP thing_build_info identity
# TYPE thing_build_info gauge
thing_build_info{version="(devel)",revision="abc\"def\\x"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("info exposition:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHotPathAllocs pins the zero-allocation guarantee for every
// hot-path operation.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", nil)
	child := r.CounterVec("alloc_vec_total", "", "w").With("w1")
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter.Inc", func() { c.Inc() }},
		{"gauge.Set", func() { g.Set(3) }},
		{"histogram.Observe", func() { h.Observe(0.017) }},
		{"vec child Inc", func() { child.Inc() }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(1000, tc.fn); avg != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, avg)
		}
	}
}
