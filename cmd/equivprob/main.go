// Command equivprob evaluates the equivalence-event probabilities that
// drive the paper's lower bounds: the exact P(E_{a,b}) of Lemma 2's
// event, a Monte-Carlo cross-check, Lemma 3's e^{-(1-p)} floor, and
// the resulting Lemma-1 bound |V|·P(E)/2.
//
// Usage:
//
//	equivprob -n 10000 -p 0.5 [-mc 20000] [-seed 1]
//	equivprob -a 99 -b 108 -p 0.25          # explicit window
package main

import (
	"flag"
	"fmt"
	"os"

	"scalefree/internal/equivalence"
	"scalefree/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "equivprob:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n    = flag.Int("n", 10000, "target vertex (canonical window from the Theorem-1 proof)")
		a    = flag.Int("a", 0, "explicit window start (overrides -n together with -b)")
		b    = flag.Int("b", 0, "explicit window end")
		p    = flag.Float64("p", 0.5, "Móri preferential mixing parameter")
		mc   = flag.Int("mc", 20000, "Monte-Carlo generations (0 to skip)")
		seed = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	wa, wb := *a, *b
	if wa == 0 || wb == 0 {
		var err error
		wa, wb, err = equivalence.Window(*n)
		if err != nil {
			return err
		}
		fmt.Printf("canonical window for target n=%d: V = [[%d, %d]], |V| = %d\n", *n, wa+1, wb, wb-wa)
	} else {
		fmt.Printf("explicit window: V = [[%d, %d]], |V| = %d\n", wa+1, wb, wb-wa)
	}

	exact, err := equivalence.ExactEventProb(*p, wa, wb)
	if err != nil {
		return err
	}
	fmt.Printf("exact P(E)      = %.6f\n", exact)
	fmt.Printf("Lemma-3 floor   = %.6f (e^{-(1-p)})\n", equivalence.Lemma3Bound(*p))

	if *mc > 0 {
		est, se, err := equivalence.MonteCarloEventProb(rng.New(*seed), *p, wa, wb, *mc)
		if err != nil {
			return err
		}
		fmt.Printf("Monte Carlo     = %.6f ± %.6f (%d generations)\n", est, se, *mc)
	}

	bound := float64(wb-wa) * exact / 2
	fmt.Printf("Lemma-1 bound   = %.2f expected requests (|V|·P(E)/2)\n", bound)
	return nil
}
