// Package core is the public face of the reproduction: it ties the
// graph models, the local-knowledge search framework, and the
// vertex-equivalence machinery together into the measurements and
// theorem-level bounds that the paper states.
//
// The three central entry points are:
//
//   - MeasureSearch — expected-request measurement of any search
//     algorithm over replicated random graphs;
//   - MeasureScaling — the same measurement swept over graph sizes,
//     with the scaling exponent fitted on log-log axes;
//   - Theorem1Bound / Theorem2Bound / StrongModelExponent — the paper's
//     lower bounds, evaluated exactly (Móri) or by Monte Carlo
//     (Cooper–Frieze), against which the measurements are compared.
package core

import (
	"fmt"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/equivalence"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
	"scalefree/internal/stats"
)

// GraphGen produces a fresh random graph for one replication.
type GraphGen func(r *rng.RNG) (*graph.Graph, error)

// MoriGen adapts a Móri configuration to a GraphGen.
func MoriGen(cfg mori.Config) GraphGen {
	return func(r *rng.RNG) (*graph.Graph, error) {
		return cfg.Generate(r)
	}
}

// CooperFriezeGen adapts a Cooper–Frieze configuration to a GraphGen.
func CooperFriezeGen(cfg cooperfrieze.Config) GraphGen {
	return func(r *rng.RNG) (*graph.Graph, error) {
		res, err := cfg.Generate(r)
		if err != nil {
			return nil, err
		}
		return res.Graph, nil
	}
}

// SearchSpec describes one search measurement.
type SearchSpec struct {
	Algorithm search.Algorithm
	// Start is the initial vertex; 0 selects vertex 1 (the oldest).
	Start graph.Vertex
	// Target is the sought vertex; 0 selects the youngest vertex n,
	// the paper's hard target.
	Target graph.Vertex
	// RandomStart draws a fresh uniform start vertex per replication
	// (overrides Start). Used by workloads without an age structure,
	// e.g. configuration-model graphs.
	RandomStart bool
	// RandomTarget draws a fresh uniform target per replication,
	// distinct from the start (overrides Target).
	RandomTarget bool
	// Budget caps requests per run (0 = unlimited). Runs that exhaust
	// the budget contribute Budget requests to the mean (censoring
	// makes the measured mean a *lower* bound on the true expectation,
	// which is the safe direction when validating lower bounds).
	Budget int
	// Reps is the number of independent graph+search replications.
	Reps int
	// Seed derives all per-replication randomness.
	Seed uint64
}

func (s SearchSpec) validate() error {
	if s.Algorithm == nil {
		return fmt.Errorf("core: SearchSpec.Algorithm is nil")
	}
	if s.Reps < 1 {
		return fmt.Errorf("core: SearchSpec.Reps = %d < 1", s.Reps)
	}
	return nil
}

// Measurement is the outcome of a replicated search measurement.
type Measurement struct {
	Algorithm string
	Knowledge search.Knowledge
	Requests  stats.Summary // over per-run request counts (censored at Budget)
	FoundRate float64
	// Samples holds the per-replication request counts, for downstream
	// significance tests (e.g. Welch comparisons between algorithms).
	Samples []float64
}

// MeasureSearch runs spec.Reps independent replications: each draws a
// fresh graph from gen and runs the algorithm once. Graph generation
// and the search consume independent RNG streams derived from Seed, so
// algorithm randomness never perturbs the graph distribution.
func MeasureSearch(gen GraphGen, spec SearchSpec) (Measurement, error) {
	if err := spec.validate(); err != nil {
		return Measurement{}, err
	}
	requests := make([]float64, 0, spec.Reps)
	found := 0
	for rep := 0; rep < spec.Reps; rep++ {
		gr := rng.New(rng.DeriveSeed(spec.Seed, uint64(2*rep)))
		sr := rng.New(rng.DeriveSeed(spec.Seed, uint64(2*rep+1)))
		g, err := gen(gr)
		if err != nil {
			return Measurement{}, fmt.Errorf("core: generating graph for rep %d: %w", rep, err)
		}
		start := spec.Start
		if start == 0 {
			start = 1
		}
		if spec.RandomStart {
			start = graph.Vertex(sr.IntRange(1, g.NumVertices()))
		}
		target := spec.Target
		if target == 0 {
			target = graph.Vertex(g.NumVertices())
		}
		if spec.RandomTarget {
			if g.NumVertices() < 2 {
				return Measurement{}, fmt.Errorf("core: rep %d: graph too small for a distinct random target", rep)
			}
			target = graph.Vertex(sr.IntRange(1, g.NumVertices()-1))
			if target >= start {
				target++
			}
		}
		// The shuffled oracle censors slot order so identities leak only
		// through the answers the paper's model defines.
		o, err := search.NewOracleShuffled(g, start, target, spec.Algorithm.Knowledge(),
			rng.DeriveSeed(spec.Seed, uint64(3*rep+2)))
		if err != nil {
			return Measurement{}, fmt.Errorf("core: rep %d: %w", rep, err)
		}
		res, err := spec.Algorithm.Search(o, sr, spec.Budget)
		if err != nil {
			return Measurement{}, fmt.Errorf("core: rep %d: %w", rep, err)
		}
		if res.Found {
			found++
		}
		requests = append(requests, float64(res.Requests))
	}
	return Measurement{
		Algorithm: spec.Algorithm.Name(),
		Knowledge: spec.Algorithm.Knowledge(),
		Requests:  stats.Summarize(requests),
		FoundRate: float64(found) / float64(spec.Reps),
		Samples:   requests,
	}, nil
}

// ScalingPoint is one size of a scaling sweep.
type ScalingPoint struct {
	N           int
	Measurement Measurement
	Bound       float64 // theorem lower bound at this size (0 if none)
}

// ScalingResult is a full sweep plus the fitted exponent of
// E[requests] ~ c·n^e.
type ScalingResult struct {
	Algorithm string
	Points    []ScalingPoint
	Fit       stats.ScalingFit
}

// MeasureScaling sweeps MeasureSearch over sizes. genFor returns the
// generator for a given n; boundFor (optional) supplies the theorem
// bound recorded next to each point.
func MeasureScaling(sizes []int, genFor func(n int) GraphGen, boundFor func(n int) (float64, error), spec SearchSpec) (ScalingResult, error) {
	if len(sizes) < 2 {
		return ScalingResult{}, fmt.Errorf("core: scaling sweep needs at least 2 sizes, got %d", len(sizes))
	}
	out := ScalingResult{Algorithm: spec.Algorithm.Name()}
	var ns, means []float64
	for i, n := range sizes {
		pointSpec := spec
		pointSpec.Seed = rng.DeriveSeed(spec.Seed, uint64(1000+i))
		m, err := MeasureSearch(genFor(n), pointSpec)
		if err != nil {
			return ScalingResult{}, fmt.Errorf("core: size %d: %w", n, err)
		}
		point := ScalingPoint{N: n, Measurement: m}
		if boundFor != nil {
			b, err := boundFor(n)
			if err != nil {
				return ScalingResult{}, fmt.Errorf("core: bound at size %d: %w", n, err)
			}
			point.Bound = b
		}
		out.Points = append(out.Points, point)
		ns = append(ns, float64(n))
		means = append(means, m.Requests.Mean)
	}
	fit, err := stats.FitScaling(ns, means)
	if err != nil {
		return ScalingResult{}, fmt.Errorf("core: fitting scaling: %w", err)
	}
	out.Fit = fit
	return out, nil
}

// Theorem1Bound returns the paper's Theorem-1 lower bound on the
// expected number of weak-model requests to find vertex n in the Móri
// model with parameter p: |V|·P(E_{a,b})/2 with the canonical window
// and the exact event probability. The bound is Ω(√n) because
// P(E) >= e^{-(1-p)} (Lemma 3).
func Theorem1Bound(n int, p float64) (float64, error) {
	return equivalence.Lemma1Bound(n, p)
}

// StrongModelExponent returns the exponent of the paper's Theorem-1
// strong-model bound Ω(n^{1/2-p-ε}), i.e. max(0, 1/2 - p). It is
// non-trivial only for p < 1/2, the regime where the Móri maximum
// degree n^p stays below the √n equivalence-set size.
func StrongModelExponent(p float64) float64 {
	if e := 0.5 - p; e > 0 {
		return e
	}
	return 0
}

// Theorem2Bound returns the Theorem-2 lower bound for a Cooper–Frieze
// configuration (target = youngest vertex n = cfg.N), with the event
// probability estimated from mcReps Monte-Carlo generations.
func Theorem2Bound(cfg cooperfrieze.Config, mcReps int, seed uint64) (float64, error) {
	bound, _, _, err := equivalence.Lemma1BoundCF(rng.New(seed), cfg, mcReps)
	return bound, err
}

// AdamicGreedyExponent returns 2(1 - 2/k), the Adamic et al. scaling
// exponent of high-degree search on power-law graphs with exponent k,
// and AdamicWalkExponent returns 3(1 - 2/k) for the random walk. Both
// require 2 < k < 3 to be meaningful.
func AdamicGreedyExponent(k float64) float64 { return 2 * (1 - 2/k) }

// AdamicWalkExponent returns the Adamic et al. random-walk exponent;
// see AdamicGreedyExponent.
func AdamicWalkExponent(k float64) float64 { return 3 * (1 - 2/k) }
