// Package model stubs the real model registry for the codecreg
// fixture: Family literals declare Params and a Build hook reading its
// Values argument.
package model

type Values map[string]float64

func (v Values) Int(name string) int   { return int(v[name]) }
func (v Values) Bool(name string) bool { return v[name] != 0 }

type Param struct {
	Name     string
	Min, Max float64
}

type Graph struct{}

type Family struct {
	Name   string
	Params []Param
	Build  func(v Values) (*Graph, error)
}
