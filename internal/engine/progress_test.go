package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"scalefree/internal/rng"
)

// fakeClock steps a RateTracker through scripted time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(window time.Duration) (*RateTracker, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rt := NewRateTracker(window)
	rt.now = clock.now
	return rt, clock
}

func TestRateTrackerSteadyState(t *testing.T) {
	rt, clock := newTestTracker(10 * time.Second)
	// 100 trials total, one completion per 500ms => 2 trials/s.
	for done := 1; done <= 40; done++ {
		clock.advance(500 * time.Millisecond)
		rt.Observe(Progress{Done: done, Total: 100})
	}
	snap := rt.Snapshot()
	if snap.Done != 40 || snap.Total != 100 {
		t.Fatalf("snapshot counts %d/%d", snap.Done, snap.Total)
	}
	if snap.Rate < 1.8 || snap.Rate > 2.2 {
		t.Errorf("rate = %.2f trials/s, want ~2", snap.Rate)
	}
	wantETA := 30 * time.Second // 60 remaining at 2/s
	if snap.ETA < wantETA-3*time.Second || snap.ETA > wantETA+3*time.Second {
		t.Errorf("ETA = %v, want ~%v", snap.ETA, wantETA)
	}
}

func TestRateTrackerWindowTracksSlowdown(t *testing.T) {
	rt, clock := newTestTracker(10 * time.Second)
	// Fast phase: 20 completions at 10/s.
	for done := 1; done <= 20; done++ {
		clock.advance(100 * time.Millisecond)
		rt.Observe(Progress{Done: done, Total: 40})
	}
	// Slow phase: 5 completions at 0.2/s. The fast phase has aged out
	// of the window, so the rate must reflect the slow regime, not the
	// whole-run average (~0.9/s).
	for done := 21; done <= 25; done++ {
		clock.advance(5 * time.Second)
		rt.Observe(Progress{Done: done, Total: 40})
	}
	snap := rt.Snapshot()
	if snap.Rate > 0.5 {
		t.Errorf("windowed rate = %.2f trials/s, still dominated by the fast phase", snap.Rate)
	}
}

// TestRateTrackerUnbiasedAtSmallN pins the fencepost fix exactly: N
// retained completions span N−1 intervals, so 3 completions 1s apart
// observed at the moment of the last one are 2 trials / 2 seconds =
// 1.0 trials/s. The pre-fix estimator reported 3/2 = 1.5 — a 50%
// overestimate at N=3, shrinking only as the window fills.
func TestRateTrackerUnbiasedAtSmallN(t *testing.T) {
	rt, clock := newTestTracker(time.Minute)
	for done := 1; done <= 3; done++ {
		clock.advance(time.Second)
		rt.Observe(Progress{Done: done, Total: 10})
	}
	snap := rt.Snapshot()
	if snap.Rate != 1.0 {
		t.Errorf("rate = %v trials/s, want exactly 1.0", snap.Rate)
	}
	// 7 remaining at 1/s.
	if snap.ETA != 7*time.Second {
		t.Errorf("ETA = %v, want 7s", snap.ETA)
	}

	// The estimator also charges idle time since the last completion:
	// two more quiet seconds dilute the rate to 2 events / 4 seconds.
	clock.advance(2 * time.Second)
	if got := rt.Snapshot().Rate; got != 0.5 {
		t.Errorf("rate after idle = %v trials/s, want 0.5", got)
	}
}

func TestRateTrackerEmptyAndDone(t *testing.T) {
	rt, _ := newTestTracker(time.Second)
	snap := rt.Snapshot()
	if snap.Rate != 0 || snap.ETA != 0 {
		t.Errorf("empty tracker: %+v", snap)
	}
	if snap.String() != "rate n/a" {
		t.Errorf("empty String() = %q", snap.String())
	}

	rt, clock := newTestTracker(time.Second)
	clock.advance(time.Second)
	rt.Observe(Progress{Done: 1, Total: 1})
	clock.advance(500 * time.Millisecond)
	snap = rt.Snapshot()
	if snap.ETA != 0 {
		t.Errorf("finished run has ETA %v", snap.ETA)
	}
	if snap.Rate <= 0 {
		t.Errorf("single completion gives no whole-run rate: %+v", snap)
	}
}

// TestRateTrackerETAUnknownWithoutWindow pins the ETA fix: the
// whole-run fallback rate (fewer than two completions in the window)
// must not feed the ETA. A burst followed by a stall long enough to
// empty the window used to extrapolate a garbage ETA from the stale
// whole-run average; now the ETA is unknown (zero) and String renders
// it as "ETA ∞" until the window refills.
func TestRateTrackerETAUnknownWithoutWindow(t *testing.T) {
	// One completion: whole-run rate exists, ETA must not.
	rt, clock := newTestTracker(10 * time.Second)
	clock.advance(time.Second)
	rt.Observe(Progress{Done: 1, Total: 100})
	clock.advance(time.Second)
	snap := rt.Snapshot()
	if snap.Rate <= 0 {
		t.Fatalf("single completion gives no whole-run rate: %+v", snap)
	}
	if snap.ETA != 0 {
		t.Errorf("ETA from the whole-run fallback = %v, want 0 (unknown)", snap.ETA)
	}
	if got := snap.String(); !strings.Contains(got, "ETA ∞") {
		t.Errorf("String() = %q, want an ETA ∞ marker", got)
	}

	// Burst then stall: the window empties, so the ETA must drop back
	// to unknown instead of extrapolating the stale whole-run average.
	rt, clock = newTestTracker(10 * time.Second)
	for done := 1; done <= 20; done++ {
		clock.advance(100 * time.Millisecond)
		rt.Observe(Progress{Done: done, Total: 100})
	}
	if eta := rt.Snapshot().ETA; eta <= 0 {
		t.Fatalf("windowed ETA missing right after the burst: %v", eta)
	}
	clock.advance(time.Minute)
	snap = rt.Snapshot()
	if snap.ETA != 0 {
		t.Errorf("post-stall ETA = %v, want 0 (unknown)", snap.ETA)
	}
	if snap.Rate <= 0 {
		t.Errorf("post-stall whole-run rate missing: %+v", snap)
	}
	if got := snap.String(); !strings.Contains(got, "ETA ∞") {
		t.Errorf("post-stall String() = %q, want an ETA ∞ marker", got)
	}

	// A finished run stays silent: no remaining work, no ∞.
	done := RateSnapshot{Done: 5, Total: 5, Rate: 1}
	if got := done.String(); strings.Contains(got, "∞") {
		t.Errorf("finished String() = %q, must not render ∞", got)
	}
}

// TestAggregatorMergesSources: completions attributed to several
// workers merge into one monotonic count with per-source attribution —
// what a coordinator renders for -progress.
func TestAggregatorMergesSources(t *testing.T) {
	rt, clock := newTestTracker(time.Minute)
	agg := NewAggregator(20, rt)
	for i := 0; i < 6; i++ {
		clock.advance(time.Second)
		agg.Add("w1")
		if i%2 == 0 {
			agg.Add("w2")
		}
	}
	snap, bySource := agg.Snapshot()
	if snap.Done != 9 || snap.Total != 20 {
		t.Errorf("aggregate = %d/%d, want 9/20", snap.Done, snap.Total)
	}
	if bySource["w1"] != 6 || bySource["w2"] != 3 {
		t.Errorf("per-source = %v, want w1:6 w2:3", bySource)
	}
	if snap.Rate <= 0 {
		t.Errorf("aggregate rate = %v, want > 0", snap.Rate)
	}
}

// TestRateTrackerWithEngine wires the tracker into a real engine run
// via the Progress hook — the composition cmd/experiments uses.
func TestRateTrackerWithEngine(t *testing.T) {
	trials := make([]Trial, 50)
	for i := range trials {
		trials[i] = Trial{Index: i, Key: "t", Seed: uint64(i)}
	}
	rt := NewRateTracker(0)
	opts := Options{Workers: 4, Progress: func(p Progress) { rt.Observe(p) }}
	_, err := Run(context.Background(), trials, opts,
		func(_ context.Context, tr Trial, _ *rng.RNG) (int, error) { return tr.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	snap := rt.Snapshot()
	if snap.Done != 50 || snap.Total != 50 {
		t.Errorf("tracker saw %d/%d completions", snap.Done, snap.Total)
	}
}

// TestAggregatorSnapshotSorted: the per-source breakdown comes back
// sorted by source name regardless of delivery order, so the stderr
// progress line and the /status payload render identically.
func TestAggregatorSnapshotSorted(t *testing.T) {
	rt, clock := newTestTracker(time.Minute)
	agg := NewAggregator(10, rt)
	for _, w := range []string{"zeta", "alpha", "mid", "alpha", "zeta", "zeta"} {
		clock.advance(time.Second)
		agg.Add(w)
	}
	snap, counts := agg.SnapshotSorted()
	if snap.Done != 6 {
		t.Errorf("Done = %d, want 6", snap.Done)
	}
	want := []SourceCount{{"alpha", 2}, {"mid", 1}, {"zeta", 3}}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("counts[%d] = %+v, want %+v", i, counts[i], w)
		}
	}
}
