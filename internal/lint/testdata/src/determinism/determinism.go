// Package determinism is the fixture for the determinism analyzer:
// forbidden wall-clock, environment, and global-rand calls, plus the
// map-iteration classification, with the sanctioned patterns alongside.
package determinism

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func wallNow() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

func wallSince(t time.Time) time.Duration {
	return time.Since(t) // want `wall-clock read time\.Since`
}

func wallUntil(t time.Time) time.Duration {
	return time.Until(t) // want `wall-clock read time\.Until`
}

// sanctioned is on the nondeterministic side by annotation.
//
//sf:wallclock — fixture: progress/ops code
func sanctioned() time.Time {
	return time.Now()
}

func environment() string {
	v, _ := os.LookupEnv("HOME") // want `environment read os\.LookupEnv`
	return v + os.Getenv("PATH") // want `environment read os\.Getenv`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand call rand\.Intn`
}

func seededRand() int {
	r := rand.New(rand.NewSource(42)) // constructors are the sanctioned entry
	return r.Intn(10)                 // methods on a local generator are fine
}

func mapReturn(m map[string]int) (string, int) {
	for k, v := range m {
		return k, v // want `map iteration order can reach a return value`
	}
	return "", 0
}

func mapCall(m map[string]int) {
	for k := range m {
		println(k) // want `map iteration order can reach a function call`
	}
}

func mapOverwrite(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v // want `map iteration order can reach an unguarded overwrite`
	}
	return last
}

// mapSortedKeys is the sanctioned extraction pattern.
func mapSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapAccumulate is commutative, hence order-insensitive.
func mapAccumulate(m map[string]int) int {
	total := 0
	count := 0
	for _, v := range m {
		total += v
		count++
	}
	return total + count
}

// mapMaxTrack: guarded overwrites are min/max tracking.
func mapMaxTrack(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// mapInvert: map and slice index stores have set semantics.
func mapInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// mapDelete: delete/copy/clear builtins are order-insensitive.
func mapDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
