package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/faultnet"
	"scalefree/internal/obs"
	"scalefree/internal/sweep"
)

// TestGoldenObservedChaosSweep is the determinism-boundary guarantee
// for the observability layer: a coordinated chaos sweep with
// everything turned on — event log, coordinator observer, fault-event
// bridge, and a live ops plane being scraped concurrently throughout —
// still renders tables byte-identical to the single-process run.
// Metrics and events observe the sweep; they must never feed it.
func TestGoldenObservedChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(t, serial)

	// Full observability stack, exactly as cmd/experiments wires it:
	// JSONL event log on disk, fault events bridged into the log, the
	// observer feeding a /status payload, and the ops handler serving
	// the process-global registry.
	eventsPath := filepath.Join(t.TempDir(), "events.jsonl")
	events, err := obs.OpenEventLog(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	observer := &sweep.CoordObserver{}

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faults := faultnet.Default()
	faults.DelayMax = 5 * time.Millisecond
	flis := faultnet.Listen(inner, 1889, faults)
	flis.OnEvent = func(ev faultnet.Event) {
		events.Emit(obs.Event{Event: "fault_injected", Op: ev.Op, Conn: ev.Conn, N: ev.Seq})
	}

	status := func() any { return observer.Snapshot() }
	srv, err := obs.StartOps("127.0.0.1:0", obs.NewOpsHandler(obs.Default(), status, false))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	outcome := make(chan struct {
		tables [][]Table
		err    error
	}, 1)
	go func() {
		tables, err := CoordinateSweep(context.Background(), []Experiment{exp}, cfg, flis,
			sweep.CoordOptions{ChunkSize: 3, LeaseTTL: 2 * time.Second, Linger: time.Second,
				Observer: observer, Events: events})
		outcome <- struct {
			tables [][]Table
			err    error
		}{tables, err}
	}()

	// Hammer the ops plane for the whole sweep: every scrape must
	// return 200 with a well-formed body, no matter what the sweep is
	// doing underneath.
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	base := "http://" + srv.Addr()
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/status", "/healthz"} {
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s: status %d", path, resp.StatusCode)
					return
				}
				if len(body) == 0 {
					t.Errorf("scrape %s: empty body", path)
					return
				}
			}
		}
	}()

	wopts := sweep.WorkerOptions{
		DialRetries:   60,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
		IOTimeout:     time.Second,
		Events:        events,
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := wopts
			opts.Name = fmt.Sprintf("obs-chaos-%d", w)
			if _, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, flis.Addr().String(),
				engine.Options{Workers: 2}, nil, opts); err != nil {
				t.Logf("worker %d exited: %v", w, err)
			}
		}(w)
	}
	out := <-outcome
	wg.Wait()
	close(scrapeStop)
	<-scrapeDone
	if out.err != nil {
		t.Fatalf("observed chaos sweep failed: %v (injected %d faults)", out.err, flis.Injected())
	}

	// The determinism boundary: fully observed output is byte-identical
	// to the bare single-process run.
	if got := renderAll(t, out.tables[0]); got != golden {
		t.Errorf("observed chaos sweep diverges from single-process run:\n--- observed ---\n%s\n--- single ---\n%s", got, golden)
	}
	if flis.Injected() == 0 {
		t.Error("fault profile injected nothing; the chaos run degenerated to the clean path")
	}

	// Final /metrics scrape carries the series the ISSUE promises:
	// lease lifecycle, per-worker results, and trial latency.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"scalefree_coord_leases_granted_total",
		"scalefree_coord_leases_completed_total",
		"scalefree_coord_results_total",
		"scalefree_coord_workers_connected",
		"scalefree_trials_completed_total",
		"scalefree_trial_seconds_bucket",
	} {
		if !bytes.Contains(exposition, []byte(series)) {
			t.Errorf("/metrics exposition is missing %s", series)
		}
	}

	// Final /status agrees with the observer: finished, fully done.
	resp, err = http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	statusBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap sweep.CoordSnapshot
	if err := json.Unmarshal(statusBody, &snap); err != nil {
		t.Fatalf("/status is not a CoordSnapshot: %v\n%s", err, statusBody)
	}
	if !snap.Finished || snap.DoneTrials != snap.TotalTrials || snap.DoneTrials == 0 {
		t.Errorf("final /status = %+v, want finished with all trials done", snap)
	}

	// The event log replays the sweep: monotonic sequence, the
	// lifecycle endpoints present, and at least one bridged fault (the
	// Injected assertion above guarantees faults fired).
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var lastSeq uint64
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %d: %v\n%s", i+1, err, line)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("event line %d: seq %d after %d, want monotonic from 1", i+1, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		counts[ev.Event]++
	}
	for _, want := range []string{"worker_join", "lease_grant", "lease_complete", "fault_injected", "sweep_done"} {
		if counts[want] == 0 {
			t.Errorf("event log recorded no %q events (got %v)", want, counts)
		}
	}
}
