// Distribution entry points: running an experiment as one shard of a
// multi-process sweep, persisting per-trial results, and merging shard
// files back into tables. The guarantee inherited from the engine and
// extended here: for a fixed Config, any (shard count, worker count,
// cache state, interruption history) produces byte-identical rendered
// tables, because every strategy assembles the same positional result
// slice before the single Reduce.
package experiment

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"scalefree/internal/core"
	"scalefree/internal/engine"
	"scalefree/internal/obs/trace"
	"scalefree/internal/sweep"
)

// reduceSpan brackets a plan's Reduce with a span on the control lane
// (TID 0). Reduce runs once per experiment on one goroutine, so the
// cold-path Emit pair is cheap and always well-nested.
func reduceSpan(rec *trace.Recorder, expID string, reduce func() error) error {
	if !rec.Enabled() {
		return reduce()
	}
	rec.Emit(trace.Record{Ph: 'B', Name: "reduce " + expID, Cat: "reduce"})
	err := reduce()
	rec.Emit(trace.Record{Ph: 'E'})
	return err
}

// planJob plans the experiment and derives the sweep job identity
// (experiment ID + plan fingerprint) that addresses its artifacts.
func (e Experiment) planJob(cfg Config) (*Plan, sweep.Job, error) {
	plan, err := e.Plan(cfg)
	if err != nil {
		return nil, sweep.Job{}, fmt.Errorf("%s: planning: %w", e.ID, err)
	}
	return plan, sweep.Job{ExpID: e.ID, Fingerprint: sweep.Fingerprint(e.ID, cfg.canonical(), plan.Trials)}, nil
}

// Fingerprint returns the plan fingerprint at cfg — the identity under
// which shard files and cached trial results are addressed.
func (e Experiment) Fingerprint(cfg Config) (string, error) {
	_, job, err := e.planJob(cfg)
	if err != nil {
		return "", err
	}
	return job.Fingerprint, nil
}

// RunCached is RunContext with an optional content-addressed result
// cache: cached trials are spliced in without executing, fresh trials
// persist as soon as they finish, and the returned stats say how much
// work the cache saved. A nil cache degrades to a plain run.
func (e Experiment) RunCached(ctx context.Context, cfg Config, opts engine.Options, cache *sweep.Cache) ([]Table, sweep.Stats, error) {
	plan, job, err := e.planJob(cfg)
	if err != nil {
		return nil, sweep.Stats{}, err
	}
	byIdx, stats, err := sweep.Execute(ctx, job, plan.Trials, opts, cache, core.NewScratch, plan.Run)
	if err != nil {
		return nil, stats, fmt.Errorf("%s: %w", e.ID, err)
	}
	results := make([]any, len(plan.Trials))
	for i := range results {
		results[i] = byIdx[i]
	}
	var tables []Table
	if err := reduceSpan(opts.Trace, e.ID, func() (rerr error) {
		tables, rerr = plan.Reduce(results)
		return rerr
	}); err != nil {
		return nil, stats, fmt.Errorf("%s: reducing: %w", e.ID, err)
	}
	return tables, stats, nil
}

// ShardFileName is the canonical file name for one shard of this
// experiment, e.g. "E4.shard-2of5" — what RunShard writes and what
// merge runs glob for.
func (e Experiment) ShardFileName(spec sweep.ShardSpec) string {
	return fmt.Sprintf("%s.shard-%dof%d", e.ID, spec.Index+1, spec.Count)
}

// RunShard executes one shard of the plan at cfg and writes the
// shard's positional results to outPath. With resume set, entries of
// an existing shard file at outPath (validated against the plan
// fingerprint and shard spec) are reused instead of re-executed and
// counted as cache hits; the optional per-trial cache fills remaining
// gaps. The written file always holds the shard's complete result set.
func (e Experiment) RunShard(ctx context.Context, cfg Config, spec sweep.ShardSpec, opts engine.Options, cache *sweep.Cache, outPath string, resume bool) (sweep.Stats, error) {
	plan, job, err := e.planJob(cfg)
	if err != nil {
		return sweep.Stats{}, err
	}
	own := spec.Filter(plan.Trials)
	header := sweep.ShardHeader{
		ExpID:       e.ID,
		Fingerprint: job.Fingerprint,
		ShardIndex:  spec.Index,
		ShardCount:  spec.Count,
		TotalTrials: len(plan.Trials),
	}

	have := map[int]any{}
	var stats sweep.Stats
	reused := false
	if resume {
		if _, err := os.Stat(outPath); err == nil {
			prev, entries, err := sweep.ReadShardFile(outPath)
			if err != nil {
				return stats, fmt.Errorf("%s: resuming from %s: %w (remove the file or rerun without -resume)", e.ID, outPath, err)
			}
			if prev != header {
				return stats, fmt.Errorf("%s: shard file %s was written for a different run (%s shard %d/%d, %d trials, fp %.12s; want shard %d/%d, %d trials, fp %.12s) — remove it or rerun without -resume",
					e.ID, outPath, prev.ExpID, prev.ShardIndex+1, prev.ShardCount, prev.TotalTrials, prev.Fingerprint,
					header.ShardIndex+1, header.ShardCount, header.TotalTrials, header.Fingerprint)
			}
			have = entries
			stats.CacheHits += len(entries)
			reused = true
		}
	}

	missing := make([]engine.Trial, 0, len(own))
	for _, t := range own {
		if _, ok := have[t.Index]; !ok {
			missing = append(missing, t)
		}
	}
	ran, execStats, err := sweep.Execute(ctx, job, missing, opts, cache, core.NewScratch, plan.Run)
	stats.Executed += execStats.Executed
	stats.CacheHits += execStats.CacheHits
	if err != nil {
		return stats, fmt.Errorf("%s shard %s: %w", e.ID, spec, err)
	}
	for idx, v := range ran {
		have[idx] = v
	}
	// A resume that found the file already complete has nothing to add;
	// skip the no-op rewrite so repeated resumes leave the file alone.
	if reused && len(missing) == 0 {
		return stats, nil
	}
	if err := sweep.WriteShardFile(outPath, header, have); err != nil {
		return stats, fmt.Errorf("%s shard %s: %w", e.ID, spec, err)
	}
	return stats, nil
}

// CoordinateSweep is the coordinator side of a work-stealing
// multi-machine run (DESIGN.md §6.4): it plans every selected
// experiment at cfg, serves the plans' trials to connecting workers as
// leased chunks via sweep.Coordinate, and — once every trial has a
// result — reduces each experiment exactly once, in selection order.
// Because each plan's positional result slice is assembled identically
// to a local run's, the returned tables are byte-identical to
// -workers 1 regardless of worker count, chunk schedule, worker
// deaths, or lease reassignments.
func CoordinateSweep(ctx context.Context, selected []Experiment, cfg Config, lis net.Listener, opts sweep.CoordOptions) ([][]Table, error) {
	plans := make([]*Plan, len(selected))
	jobs := make([]sweep.CoordJob, len(selected))
	for i, e := range selected {
		plan, job, err := e.planJob(cfg)
		if err != nil {
			lis.Close()
			return nil, err
		}
		plans[i] = plan
		jobs[i] = sweep.CoordJob{Job: job, Trials: plan.Trials}
	}
	byJob, err := sweep.Coordinate(ctx, lis, jobs, opts)
	if err != nil {
		return nil, err
	}
	tables := make([][]Table, len(selected))
	for i, e := range selected {
		results := make([]any, len(plans[i].Trials))
		for j := range results {
			results[j] = byJob[i][j]
		}
		if err := reduceSpan(opts.Trace, e.ID, func() (rerr error) {
			tables[i], rerr = plans[i].Reduce(results)
			return rerr
		}); err != nil {
			return nil, fmt.Errorf("%s: reducing: %w", e.ID, err)
		}
	}
	return tables, nil
}

// DrainToDir builds a sweep.CoordOptions.Drain hook that persists each
// cancelled job's completed results into dir as a 1-of-1 SFSHARD1
// shard file named like RunShard's output, so a drained sweep resumes
// through the existing machinery: `-shard 1/1 -resume` reuses every
// persisted trial (counted as cache hits) and executes only the
// missing ones, and a file the drain completed merges as-is. The
// selection and cfg must match the CoordinateSweep call the hook is
// attached to — the shard headers are derived from the same plans.
func DrainToDir(selected []Experiment, cfg Config, dir string, logf func(format string, args ...any)) (func(jobIdx int, results map[int]any), error) {
	spec := sweep.ShardSpec{Index: 0, Count: 1}
	headers := make([]sweep.ShardHeader, len(selected))
	paths := make([]string, len(selected))
	for i, e := range selected {
		plan, job, err := e.planJob(cfg)
		if err != nil {
			return nil, err
		}
		headers[i] = sweep.ShardHeader{
			ExpID:       e.ID,
			Fingerprint: job.Fingerprint,
			ShardIndex:  spec.Index,
			ShardCount:  spec.Count,
			TotalTrials: len(plan.Trials),
		}
		paths[i] = filepath.Join(dir, e.ShardFileName(spec))
	}
	return func(jobIdx int, results map[int]any) {
		if err := sweep.WriteShardFile(paths[jobIdx], headers[jobIdx], results); err != nil {
			if logf != nil {
				logf("drain: %s: %v", paths[jobIdx], err)
			}
			return
		}
		if logf != nil {
			logf("drain: wrote %d/%d results to %s", len(results), headers[jobIdx].TotalTrials, paths[jobIdx])
		}
	}, nil
}

// SweepWorker is the worker side: it re-plans the selected experiments
// at cfg and serves leased chunks through the cache-aware
// sweep.Execute path, so a worker's local -cache still persists every
// finished trial and warm entries satisfy stolen chunks without
// recomputation. A lease for an experiment this worker did not select,
// or whose fingerprint differs from the local plan's (different seed,
// scale, or binary revision), aborts the sweep on both sides — a
// configuration skew must never be absorbed silently.
func SweepWorker(ctx context.Context, selected []Experiment, cfg Config, addr string, eopts engine.Options, cache *sweep.Cache, wopts sweep.WorkerOptions) (sweep.Stats, error) {
	type local struct {
		plan *Plan
		job  sweep.Job
	}
	locals := make(map[string]local, len(selected))
	for _, e := range selected {
		plan, job, err := e.planJob(cfg)
		if err != nil {
			return sweep.Stats{}, err
		}
		locals[e.ID] = local{plan: plan, job: job}
	}
	resolve := func(expID, fingerprint string) (*sweep.WorkerJob, error) {
		l, ok := locals[expID]
		if !ok {
			return nil, fmt.Errorf("experiment %s is not selected on this worker (check -run)", expID)
		}
		if l.job.Fingerprint != fingerprint {
			return nil, fmt.Errorf("%s plan fingerprint %.12s does not match the coordinator's %.12s — workers must run the same binary, -seed, and -scale",
				expID, l.job.Fingerprint, fingerprint)
		}
		return &sweep.WorkerJob{
			Trials: l.plan.Trials,
			Execute: func(ctx context.Context, trials []engine.Trial) (map[int]any, sweep.Stats, error) {
				return sweep.Execute(ctx, l.job, trials, eopts, cache, core.NewScratch, l.plan.Run)
			},
		}, nil
	}
	return sweep.RunWorker(ctx, addr, resolve, wopts)
}

// MergeShardFiles reassembles the full positional result slice of the
// plan at cfg from shard files and runs Reduce once. The files must
// carry this experiment's fingerprint at exactly this Config —
// sharded runs under a different seed or scale are rejected, never
// silently merged — and must jointly cover every trial.
func (e Experiment) MergeShardFiles(cfg Config, paths []string) ([]Table, error) {
	plan, job, err := e.planJob(cfg)
	if err != nil {
		return nil, err
	}
	header, results, err := sweep.Merge(paths)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	if header.ExpID != e.ID {
		return nil, fmt.Errorf("%s: shard files belong to %s", e.ID, header.ExpID)
	}
	if header.Fingerprint != job.Fingerprint {
		return nil, fmt.Errorf("%s: shard files carry plan fingerprint %.12s, this Config plans %.12s — they were produced under a different seed, scale, or codec version",
			e.ID, header.Fingerprint, job.Fingerprint)
	}
	if header.TotalTrials != len(plan.Trials) {
		return nil, fmt.Errorf("%s: shard files hold %d trials, plan has %d", e.ID, header.TotalTrials, len(plan.Trials))
	}
	tables, err := plan.Reduce(results)
	if err != nil {
		return nil, fmt.Errorf("%s: reducing: %w", e.ID, err)
	}
	return tables, nil
}
