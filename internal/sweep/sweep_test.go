package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/rng"
)

// makeTrials builds a synthetic plan of n trials whose pure result is
// a deterministic function of the trial seed.
func makeTrials(n int) []engine.Trial {
	trials := make([]engine.Trial, n)
	for i := range trials {
		trials[i] = engine.Trial{Index: i, Key: fmt.Sprintf("t/%d", i), Seed: uint64(1000 + i)}
	}
	return trials
}

func trialFn(_ context.Context, t engine.Trial, _ *rng.RNG, _ struct{}) (any, error) {
	return float64(t.Seed) * 1.5, nil
}

func noScratch() struct{} { return struct{}{} }

func testJob(trials []engine.Trial) Job {
	return Job{ExpID: "ETEST", Fingerprint: Fingerprint("ETEST", "seed=1/scale=1", trials)}
}

func TestParseShardSpec(t *testing.T) {
	good := map[string]ShardSpec{
		"1/1": {0, 1},
		"1/4": {0, 4},
		"4/4": {3, 4},
	}
	for in, want := range good {
		got, err := ParseShardSpec(in)
		if err != nil || got != want {
			t.Errorf("ParseShardSpec(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != in {
			t.Errorf("ShardSpec(%q).String() = %q", in, got.String())
		}
	}
	for _, in := range []string{"", "1", "0/4", "5/4", "1/0", "-1/4", "a/b", "1/4/2"} {
		if _, err := ParseShardSpec(in); err == nil {
			t.Errorf("ParseShardSpec(%q) succeeded", in)
		}
	}
}

func TestShardFilterPartitions(t *testing.T) {
	trials := makeTrials(23)
	for _, k := range []int{1, 2, 5, 23, 40} {
		seen := map[int]int{}
		for i := 0; i < k; i++ {
			for _, tr := range (ShardSpec{Index: i, Count: k}).Filter(trials) {
				seen[tr.Index]++
			}
		}
		if len(seen) != len(trials) {
			t.Errorf("k=%d: shards cover %d of %d trials", k, len(seen), len(trials))
		}
		for idx, c := range seen {
			if c != 1 {
				t.Errorf("k=%d: trial %d owned by %d shards", k, idx, c)
			}
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	trials := makeTrials(5)
	const params = "seed=1/scale=1"
	base := Fingerprint("E1", params, trials)
	if Fingerprint("E1", params, trials) != base {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint("E2", params, trials) == base {
		t.Error("fingerprint ignores experiment ID")
	}
	if Fingerprint("E1", "seed=1/scale=0.5", trials) == base {
		t.Error("fingerprint ignores params")
	}
	mut := makeTrials(5)
	mut[3].Seed++
	if Fingerprint("E1", params, mut) == base {
		t.Error("fingerprint ignores trial seeds")
	}
	mut = makeTrials(5)
	mut[0].Key = "other"
	if Fingerprint("E1", params, mut) == base {
		t.Error("fingerprint ignores trial keys")
	}
	if Fingerprint("E1", params, makeTrials(4)) == base {
		t.Error("fingerprint ignores trial count")
	}
}

func TestCachePutGet(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	trials := makeTrials(3)
	job := testJob(trials)
	key := CacheKey(job.ExpID, job.Fingerprint, trials[0])
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(key, job.Fingerprint, 42.5); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(key)
	if !ok || v != 42.5 {
		t.Fatalf("Get = %v, %v; want 42.5, true", v, ok)
	}
	// A corrupt entry is a miss, not an error.
	if err := os.WriteFile(c.path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("hit on corrupt entry")
	}
	if err := c.Put(key, job.Fingerprint, 7.0); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(key); !ok || v != 7.0 {
		t.Error("overwrite of corrupt entry failed")
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}
}

// TestCacheRejectsMalformedKeys: keys CacheKey cannot produce — too
// short for the fan-out split (which used to panic via key[:2]), or
// not hex at all — must be Get misses and Put errors, never crashes
// or stray files.
func TestCacheRejectsMalformedKeys(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a", "ab", "ABCDEF", "..", "../../escape", "0g11", "deadbeef/x"} {
		if _, ok := c.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
		if err := c.Put(key, "fp", 1.0); err == nil {
			t.Errorf("Put(%q) succeeded", key)
		}
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Errorf("malformed puts left %d entries (%v)", n, err)
	}
}

// TestCacheLenSkipsTempFiles: a crashed writer's temp leftovers are
// not entries and must not inflate Len.
func TestCacheLenSkipsTempFiles(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	trials := makeTrials(1)
	job := testJob(trials)
	key := CacheKey(job.ExpID, job.Fingerprint, trials[0])
	if err := c.Put(key, job.Fingerprint, 3.5); err != nil {
		t.Fatal(err)
	}
	crash := filepath.Join(c.Dir(), key[:2], tempPrefix+key+"-1234")
	if err := os.WriteFile(crash, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1 (temp files are not entries)", n, err)
	}
}

// TestOpenCacheReapsStaleTemps: reopening a cache removes temp files
// old enough to be crash orphans, but leaves fresh ones (a concurrent
// writer's in-flight rename) alone.
func TestOpenCacheReapsStaleTemps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, tempPrefix+"old-111")
	fresh := filepath.Join(sub, tempPrefix+"new-222")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempReapAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived OpenCache")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file was reaped")
	}
	_ = c
}

// TestCacheEvictTo: eviction is LRU by mtime with a hard guarantee —
// entries written or touched by the current run (at or after
// OpenCache) are never removed, no matter how small the bound. Old
// entries are simulated by backdating mtimes, exactly what a cache
// directory inherited from last week's sweeps looks like.
func TestCacheEvictTo(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	trials := makeTrials(6)
	job := testJob(trials)
	keys := make([]string, len(trials))
	for i, tr := range trials {
		keys[i] = CacheKey(job.ExpID, job.Fingerprint, tr)
		if err := c.Put(keys[i], job.Fingerprint, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Entries 0-3 predate this run; 4 and 5 are the current run's own
	// writes and stay fresh.
	for i := 0; i <= 3; i++ {
		old := time.Now().Add(-time.Duration(4-i) * time.Hour)
		if err := os.Chtimes(c.path(keys[i]), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// A Get refreshes the entry's recency: entry 3 becomes part of the
	// current run's working set and must survive any eviction.
	if _, ok := c.Get(keys[3]); !ok {
		t.Fatal("miss on backdated entry")
	}

	stats, err := c.EvictTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 3 {
		t.Errorf("EvictTo(0) removed %d entries, want the 3 stale ones", stats.Entries)
	}
	if stats.Kept == 0 {
		t.Error("EvictTo(0) reports nothing kept despite protected entries")
	}
	for i, key := range keys {
		_, ok := c.Get(key)
		if want := i >= 3; ok != want {
			t.Errorf("after eviction, entry %d present = %v, want %v", i, ok, want)
		}
	}

	// LRU order: with a bound that forces out exactly one entry, the
	// oldest goes and the rest stay.
	c2, err := OpenCache(filepath.Join(t.TempDir(), "cache2"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var sizes [3]int64
	for i := 0; i < 3; i++ {
		if err := c2.Put(keys[i], job.Fingerprint, float64(i)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(c2.path(keys[i]))
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = info.Size()
		total += info.Size()
		old := time.Now().Add(-time.Duration(3-i) * time.Hour)
		if err := os.Chtimes(c2.path(keys[i]), old, old); err != nil {
			t.Fatal(err)
		}
	}
	stats, err = c2.EvictTo(total - sizes[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 || stats.Bytes != sizes[0] {
		t.Errorf("EvictTo removed %d entries / %d bytes, want the single oldest (%d bytes)", stats.Entries, stats.Bytes, sizes[0])
	}
	if _, ok := c2.Get(keys[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	for i := 1; i < 3; i++ {
		if _, ok := c2.Get(keys[i]); !ok {
			t.Errorf("entry %d evicted out of LRU order", i)
		}
	}

	if _, err := c2.EvictTo(-1); err == nil {
		t.Error("negative bound accepted")
	}
}

// TestCacheGCByFingerprint: GC removes exactly one fingerprint's
// entries plus temp and corrupt files, leaving other runs' entries
// usable.
func TestCacheGCByFingerprint(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	trials := makeTrials(6)
	keep := Job{ExpID: "ETEST", Fingerprint: Fingerprint("ETEST", "seed=1/scale=1", trials)}
	drop := Job{ExpID: "ETEST", Fingerprint: Fingerprint("ETEST", "seed=2/scale=1", trials)}
	for _, tr := range trials[:4] {
		if err := storeTrial(c, keep.ExpID, keep.Fingerprint, tr, float64(tr.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range trials {
		if err := storeTrial(c, drop.ExpID, drop.Fingerprint, tr, float64(tr.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	// A temp leftover and a corrupt entry ride along.
	corruptKey := "00" + strings.Repeat("ab", 31)
	if err := os.MkdirAll(filepath.Join(c.Dir(), "00"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "00", corruptKey), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "00", tempPrefix+"left-1"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	stats, err := c.GC(drop.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 6 || stats.Corrupt != 1 || stats.Temps != 1 || stats.Bytes == 0 {
		t.Errorf("GC stats = %+v, want 6 entries / 1 corrupt / 1 temp", stats)
	}
	if n, err := c.Len(); err != nil || n != 4 {
		t.Errorf("Len after GC = %d, %v; want 4", n, err)
	}
	for _, tr := range trials[:4] {
		if v, ok := lookupTrial(c, keep.ExpID, keep.Fingerprint, tr); !ok || v != float64(tr.Seed) {
			t.Errorf("kept entry for trial %d unreadable after GC: %v, %v", tr.Index, v, ok)
		}
	}
	for _, tr := range trials {
		if _, ok := lookupTrial(c, drop.ExpID, drop.Fingerprint, tr); ok {
			t.Errorf("dropped fingerprint still hits for trial %d", tr.Index)
		}
	}
	if _, err := c.GC(""); err == nil {
		t.Error("GC with empty fingerprint succeeded")
	}
}

func TestExecuteCacheLifecycle(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	trials := makeTrials(17)
	job := testJob(trials)
	ctx := context.Background()

	var calls atomic.Int64
	counted := func(ctx context.Context, tr engine.Trial, r *rng.RNG, s struct{}) (any, error) {
		calls.Add(1)
		return trialFn(ctx, tr, r, s)
	}

	cold, stats, err := Execute(ctx, job, trials, engine.Options{Workers: 4}, cache, noScratch, counted)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 17 || stats.CacheHits != 0 || calls.Load() != 17 {
		t.Fatalf("cold run: stats %+v, calls %d", stats, calls.Load())
	}

	calls.Store(0)
	warm, stats, err := Execute(ctx, job, trials, engine.Options{Workers: 4}, cache, noScratch, counted)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 || stats.CacheHits != 17 {
		t.Fatalf("warm run: stats %+v", stats)
	}
	if calls.Load() != 0 {
		t.Fatalf("warm run re-executed %d trials", calls.Load())
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("cached results differ from computed results")
	}

	// A different fingerprint misses everything: cached results are
	// pinned to the plan that produced them.
	other := Job{ExpID: job.ExpID, Fingerprint: "0000"}
	calls.Store(0)
	_, stats, err = Execute(ctx, other, trials, engine.Options{Workers: 2}, cache, noScratch, counted)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || calls.Load() != 17 {
		t.Errorf("fingerprint change still hit the cache: %+v", stats)
	}
}

func TestExecuteCancellationPersists(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	trials := makeTrials(30)
	job := testJob(trials)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel once a third of the trials have completed; the engine
	// drains the rest without running them.
	var calls atomic.Int64
	fn := func(ctx context.Context, tr engine.Trial, r *rng.RNG, s struct{}) (any, error) {
		if calls.Add(1) == 10 {
			cancel()
		}
		return trialFn(ctx, tr, r, s)
	}
	_, stats, err := Execute(ctx, job, trials, engine.Options{Workers: 1}, cache, noScratch, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Executed != 10 {
		t.Fatalf("interrupted run persisted %d trials, want 10", stats.Executed)
	}

	// Resume: only the remainder executes, and the union is complete.
	var resumed atomic.Int64
	counted := func(ctx context.Context, tr engine.Trial, r *rng.RNG, s struct{}) (any, error) {
		resumed.Add(1)
		return trialFn(ctx, tr, r, s)
	}
	results, stats, err := Execute(context.Background(), job, trials, engine.Options{Workers: 3}, cache, noScratch, counted)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 10 || stats.Executed != 20 || resumed.Load() != 20 {
		t.Fatalf("resume: stats %+v, ran %d", stats, resumed.Load())
	}
	if len(results) != 30 {
		t.Fatalf("resume produced %d results", len(results))
	}
	for _, tr := range trials {
		if results[tr.Index] != float64(tr.Seed)*1.5 {
			t.Fatalf("trial %d: wrong result %v", tr.Index, results[tr.Index])
		}
	}
}

func TestShardFileRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	trials := makeTrials(11)
	job := testJob(trials)
	ctx := context.Background()

	const k = 3
	var paths []string
	for i := 0; i < k; i++ {
		spec := ShardSpec{Index: i, Count: k}
		own := spec.Filter(trials)
		results, _, err := Execute(ctx, job, own, engine.Options{Workers: 2}, nil, noScratch, trialFn)
		if err != nil {
			t.Fatal(err)
		}
		h := ShardHeader{ExpID: job.ExpID, Fingerprint: job.Fingerprint,
			ShardIndex: i, ShardCount: k, TotalTrials: len(trials)}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.bin", i))
		if err := WriteShardFile(path, h, results); err != nil {
			t.Fatal(err)
		}
		gotH, gotR, err := ReadShardFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if gotH != h {
			t.Fatalf("header round trip: %+v != %+v", gotH, h)
		}
		if !reflect.DeepEqual(gotR, results) {
			t.Fatalf("entries round trip: %v != %v", gotR, results)
		}
		paths = append(paths, path)
	}

	h, merged, err := Merge(paths)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExpID != job.ExpID || len(merged) != len(trials) {
		t.Fatalf("merged header %+v, %d results", h, len(merged))
	}
	for _, tr := range trials {
		if merged[tr.Index] != float64(tr.Seed)*1.5 {
			t.Fatalf("trial %d: merged %v", tr.Index, merged[tr.Index])
		}
	}

	// Incomplete coverage is an error that names the gap.
	if _, _, err := Merge(paths[:2]); err == nil {
		t.Error("merge of 2 of 3 shards succeeded")
	}
	// The same shard twice is an error.
	if _, _, err := Merge([]string{paths[0], paths[0], paths[1], paths[2]}); err == nil {
		t.Error("merge with a duplicated shard succeeded")
	}
	// A file from a different plan is an error.
	otherTrials := makeTrials(11)
	otherTrials[0].Seed = 9999
	otherJob := testJob(otherTrials)
	results, _, err := Execute(ctx, otherJob, (ShardSpec{Index: 0, Count: k}).Filter(otherTrials),
		engine.Options{}, nil, noScratch, trialFn)
	if err != nil {
		t.Fatal(err)
	}
	alien := filepath.Join(dir, "alien.bin")
	if err := WriteShardFile(alien, ShardHeader{ExpID: otherJob.ExpID, Fingerprint: otherJob.Fingerprint,
		ShardIndex: 0, ShardCount: k, TotalTrials: len(otherTrials)}, results); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge([]string{alien, paths[1], paths[2]}); err == nil {
		t.Error("merge across different fingerprints succeeded")
	}
}

func TestReadShardFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte("not a shard file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShardFile(path); err == nil {
		t.Error("garbage accepted as shard file")
	}
	if _, _, err := ReadShardFile(filepath.Join(dir, "absent.bin")); err == nil {
		t.Error("missing file accepted")
	}
}
