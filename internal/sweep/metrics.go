package sweep

import (
	"sync"

	"scalefree/internal/obs"
)

// Package-level metrics, registered once on the process-global
// registry. Everything here sits strictly outside the determinism
// boundary: metrics observe trial execution and sweep scheduling, they
// never feed either — the golden tests pin that a sweep's tables are
// byte-identical with observability fully enabled.
//
// Counters are process-global rather than per-Coordinate/per-RunWorker
// because one process hosts at most one sweep role at a time in
// practice; a scrape therefore reads as "this process's lifetime
// totals", which is exactly what Prometheus counters mean.
var (
	// Trial execution (worker or single-process side; Execute).
	mTrialsCompleted = obs.Default().CounterVec("scalefree_trials_completed_total",
		"Trials executed to completion, by experiment.", "exp")
	mTrialFailures = obs.Default().CounterVec("scalefree_trial_failures_total",
		"Trial executions that returned an error, by experiment.", "exp")
	mTrialSeconds = obs.Default().HistogramVec("scalefree_trial_seconds",
		"Wall-clock latency of executed trials, by experiment.", "exp", nil)

	// Result cache (Cache).
	mCacheHits = obs.Default().Counter("scalefree_cache_hits_total",
		"Cache lookups satisfied from the content-addressed store.")
	mCacheMisses = obs.Default().Counter("scalefree_cache_misses_total",
		"Cache lookups that missed (absent, corrupt, or version-skewed entries).")
	mCachePutBytes = obs.Default().Counter("scalefree_cache_put_bytes_total",
		"Bytes written into the cache by Put.")
	mCacheEvictedEntries = obs.Default().Counter("scalefree_cache_evicted_entries_total",
		"Entries removed by LRU eviction (EvictTo).")
	mCacheEvictedBytes = obs.Default().Counter("scalefree_cache_evicted_bytes_total",
		"Bytes removed by LRU eviction (EvictTo).")
	mCacheGCRemoved = obs.Default().Counter("scalefree_cache_gc_removed_total",
		"Files removed by cache GC (entries, corrupt files, and temps).")

	// Coordinator lease lifecycle (Coordinate).
	mLeasesGranted = obs.Default().Counter("scalefree_coord_leases_granted_total",
		"Chunk leases handed to workers.")
	mLeasesCompleted = obs.Default().Counter("scalefree_coord_leases_completed_total",
		"Leases retired by a worker's COMPLETE.")
	mLeasesStolen = obs.Default().Counter("scalefree_coord_leases_stolen_total",
		"Leases reclaimed after missing their heartbeat deadline (work stealing).")
	mLeasesRevoked = obs.Default().Counter("scalefree_coord_leases_revoked_total",
		"Leases revoked because their worker's connection dropped.")
	mChunkRetries = obs.Default().Counter("scalefree_coord_chunk_retries_total",
		"Failed chunks re-leased for their one retry.")
	mRefusals = obs.Default().Counter("scalefree_coord_refusals_total",
		"Workers that refused the sweep (plan mismatch, codec failure).")
	mDupResults = obs.Default().Counter("scalefree_coord_duplicate_results_total",
		"Duplicate trial deliveries resolved by content equality (stolen chunks).")
	mCoordResults = obs.Default().CounterVec("scalefree_coord_results_total",
		"Newly completed trials accepted by the coordinator, by reporting worker.", "worker")
	mWorkersConnected = obs.Default().Gauge("scalefree_coord_workers_connected",
		"Workers currently past the HELLO handshake.")
	mLeaseSeconds = obs.Default().Histogram("scalefree_coord_lease_seconds",
		"Lease lifetime from grant to COMPLETE — the coordinator's view of chunk latency.", nil)

	// Worker client (RunWorker).
	mWorkerReconnects = obs.Default().Counter("scalefree_worker_reconnects_total",
		"Connection attempts that failed and entered backoff.")
	mWorkerHeartbeats = obs.Default().Counter("scalefree_worker_heartbeats_total",
		"PING heartbeats sent while executing leased chunks.")
	mWorkerLeasesLost = obs.Default().Counter("scalefree_worker_leases_lost_total",
		"Leases revoked under this worker mid-execution (chunk stolen).")
	mWorkerChunks = obs.Default().Counter("scalefree_worker_chunks_total",
		"Leased chunks this worker executed and delivered.")
	mWorkerChunkFailures = obs.Default().Counter("scalefree_worker_chunk_failures_total",
		"Leased chunks whose execution failed (reported as FAIL).")
)

// CoordObserver publishes a live view of one Coordinate call for the
// /status endpoint. Attach it via CoordOptions.Observer; Snapshot is
// safe to call from any goroutine at any time, including before the
// sweep starts (it reports zeros) and after it ends.
type CoordObserver struct {
	mu sync.Mutex //sf:mutex observer.mu
	st *coordState
}

func (o *CoordObserver) attach(st *coordState) {
	o.mu.Lock()
	o.st = st
	o.mu.Unlock()
}

// JobStatus is one experiment's completion state in a CoordSnapshot.
type JobStatus struct {
	ExpID       string `json:"exp"`
	Fingerprint string `json:"fingerprint"`
	Trials      int    `json:"trials"`
	Done        int    `json:"done"`
}

// CoordSnapshot is a point-in-time view of a coordinated sweep — the
// scheduling half of the /status payload. It is plain data with a
// stable JSON schema; the HTTP layer renders it as-is.
type CoordSnapshot struct {
	Jobs          []JobStatus `json:"jobs"`
	TotalTrials   int         `json:"total_trials"`
	DoneTrials    int         `json:"done_trials"`
	PendingChunks int         `json:"pending_chunks"`
	ActiveLeases  int         `json:"active_leases"`
	Workers       int         `json:"workers_connected"`
	Draining      bool        `json:"draining"`
	Finished      bool        `json:"finished"`
	Failure       string      `json:"failure,omitempty"`
}

// Snapshot reads the coordinator's current state. Before Coordinate
// attaches the observer it returns the zero snapshot. It takes
// observer.mu, st.mu, and leases.mu strictly one at a time — never
// nested — so it can run from any ops goroutine without joining the
// coordinator's lock order.
//
//sf:locksequential
func (o *CoordObserver) Snapshot() CoordSnapshot {
	o.mu.Lock()
	st := o.st
	o.mu.Unlock()
	if st == nil {
		return CoordSnapshot{}
	}
	var s CoordSnapshot
	st.mu.Lock()
	s.Jobs = make([]JobStatus, len(st.jobs))
	for j, job := range st.jobs {
		s.Jobs[j] = JobStatus{
			ExpID:       job.Job.ExpID,
			Fingerprint: job.Job.Fingerprint,
			Trials:      len(job.Trials),
			Done:        len(st.results[j]),
		}
		s.TotalTrials += len(job.Trials)
		s.DoneTrials += len(st.results[j])
	}
	s.Workers = len(st.helloed)
	s.Draining = st.draining
	s.Finished = st.finished
	if st.failure != nil {
		s.Failure = st.failure.Error()
	}
	st.mu.Unlock()
	// The lease table has its own lock; reading it outside st.mu keeps
	// the two locks unnested (coordinator code paths nest st.mu over
	// leases.mu, never the reverse).
	s.PendingChunks, s.ActiveLeases = st.leases.Counts()
	return s
}
