// Build identity: what binary is this fleet actually running? A
// coordinated sweep aborts on plan-fingerprint skew, but the operator
// debugging that abort needs to see *which* revision each process
// carries — so the ops plane exposes the embedded Go build info both
// as a /status section and as the Prometheus info-pattern constant
// scalefree_build_info.
package obs

import "runtime/debug"

// BuildInfo is the running binary's identity, read from the build
// metadata the Go linker embeds. Fields fall back to "unknown" when
// the binary was built without VCS stamping (e.g. `go test`, or a
// build outside a repository).
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for local
	// builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash the binary was built from.
	Revision string `json:"revision"`
	// Modified is "true" when the working tree was dirty at build time,
	// "false" when clean, "unknown" without VCS stamping.
	Modified string `json:"modified"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// ReadBuild collects the binary's BuildInfo.
func ReadBuild() BuildInfo {
	bi := BuildInfo{Version: "unknown", Revision: "unknown", Modified: "unknown", GoVersion: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value
		}
	}
	return bi
}

// RegisterBuildInfo exposes the binary's identity on r as the constant
// metric scalefree_build_info{version,revision,modified,go_version} 1
// and returns the same BuildInfo for /status payloads.
func RegisterBuildInfo(r *Registry) BuildInfo {
	bi := ReadBuild()
	r.Info("scalefree_build_info",
		"Build identity of the running binary; the value is always 1.",
		[][2]string{
			{"version", bi.Version},
			{"revision", bi.Revision},
			{"modified", bi.Modified},
			{"go_version", bi.GoVersion},
		})
	return bi
}
