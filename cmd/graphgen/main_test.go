package main

import (
	"path/filepath"
	"strings"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
)

// TestFlagValidation pins the CLI's rejection of bad model selections
// and parameter sets, in the cmd/experiments main_test.go style: every
// diagnostic must name the offending piece so the operator can
// self-serve from the error alone.
func TestFlagValidation(t *testing.T) {
	reject := []struct {
		name string
		args []string
		want string // substring of the diagnostic
	}{
		// Unknown model names list the registry.
		{"unknown model", []string{"-model", "watts-strogatz"}, "unknown model"},
		{"unknown model lists registry", []string{"-model", "nope"}, "fitness"},

		// Unknown and malformed per-model parameters.
		{"unknown param", []string{"-model", "mori", "-params", "alpha=0.5"}, "no parameter"},
		{"unknown param lists table", []string{"-model", "ba", "-params", "p=0.5"}, "n, m"},
		{"malformed pair", []string{"-model", "mori", "-params", "p"}, "malformed"},
		{"missing value", []string{"-model", "mori", "-params", "p="}, "malformed"},
		{"non-numeric float", []string{"-model", "mori", "-params", "p=high"}, "not a number"},
		{"non-integer int", []string{"-model", "fitness", "-params", "n=lots"}, "not an integer"},
		{"fractional int", []string{"-model", "ba", "-params", "m=1.5"}, "not an integer"},
		{"non-boolean bool", []string{"-model", "config", "-params", "giant=perhaps"}, "not a boolean"},

		// Out-of-range values surface the model's own validation.
		{"mori p out of range", []string{"-model", "mori", "-params", "p=2"}, "out of"},
		{"mori n too small", []string{"-model", "mori", "-params", "n=1"}, "< 2"},
		{"fitness eta0 zero", []string{"-model", "fitness", "-params", "eta0=0"}, "out of"},
		{"fitness eta0 busy-loop", []string{"-model", "fitness", "-params", "eta0=1e-6"}, "floor"},
		{"geopa r negative", []string{"-model", "geopa", "-params", "r=-0.5"}, "positive"},
		{"geopa r busy-loop", []string{"-model", "geopa", "-params", "r=0.001"}, "floor"},
		{"config k too small", []string{"-model", "config", "-params", "k=1"}, "exceed 1"},
		{"kleinberg l too small", []string{"-model", "kleinberg", "-params", "l=1"}, "< 2"},
		{"cf alpha zero", []string{"-model", "cf", "-params", "alpha=0"}, "out of"},

		// -list is informational only.
		{"list with params", []string{"-list", "-params", "n=10"}, "-list"},
		{"list with output", []string{"-list", "-o", "x.edges"}, "-list"},
		{"list with snapshot", []string{"-list", "-snapshot", "x.csr"}, "-list"},

		// Thread counts must be sane.
		{"negative threads", []string{"-threads", "-2"}, "negative"},
	}
	for _, tc := range reject {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseOptions(tc.args)
			if err == nil {
				_, err = o.resolve()
			}
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}

	accept := [][]string{
		{},
		{"-model", "mori", "-params", "n=128,m=2,p=0.75", "-seed", "9"},
		{"-model", "cf", "-params", "n=128,alpha=0.6,loops=false"},
		{"-model", "config", "-params", "n=128,k=2.5,giant=true"},
		{"-model", "kleinberg", "-params", "l=8,r=2,q=2"},
		{"-model", "fitness", "-params", "n=128,m=2,eta0=0.3"},
		{"-model", "geopa", "-params", "n=128,r=0.4"},
		{"-list"},
	}
	for _, args := range accept {
		o, err := parseOptions(args)
		if err == nil && !o.list {
			_, err = o.resolve()
		}
		if err != nil {
			t.Errorf("args %v rejected: %v", args, err)
		}
	}
}

// TestSnapshotOutput runs the CLI end to end with -snapshot: the
// written file must open via mmap and reproduce exactly the graph the
// model generates for the same seed, and with no -o the text edge list
// must not leak to stdout.
func TestSnapshotOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.csr")
	var stdout, stderr strings.Builder
	args := []string{"-model", "mori", "-params", "n=256,m=2,p=0.5", "-seed", "11", "-snapshot", path}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Errorf("snapshot-only run wrote %d bytes of text to stdout", stdout.Len())
	}
	if !strings.Contains(stderr.String(), "edges/sec") {
		t.Errorf("stderr report lacks throughput: %q", stderr.String())
	}

	snap, err := graph.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := model.New("mori", "n=256,m=2,p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Generate(rng.New(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(want, snap.Graph()) {
		t.Error("snapshot graph differs from direct generation at the same seed")
	}
}

// TestListModels: the registry listing names every model and its
// parameters (the operator-facing inventory behind -model).
func TestListModels(t *testing.T) {
	var sb strings.Builder
	listModels(&sb)
	out := sb.String()
	for _, want := range []string{"mori", "cf", "ba", "config", "kleinberg", "fitness", "geopa", "eta0", "default"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}
