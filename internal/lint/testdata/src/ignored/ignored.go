// Package ignored exercises //sflint:ignore suppression: every
// directive here carries a reason and suppresses a real diagnostic, so
// the run is clean.
package ignored

import "time"

func sameLine() time.Time {
	return time.Now() //sflint:ignore determinism fixture: suppression on the flagged line
}

func lineAbove() time.Time {
	//sflint:ignore determinism fixture: suppression on the line above
	return time.Now()
}
