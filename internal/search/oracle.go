// Package search implements the paper's two models of local knowledge —
// the weak model and the strong model — as request-counting oracles,
// together with the suite of local search algorithms measured against
// the non-searchability lower bounds.
//
// All graph access by a search algorithm is mediated by an Oracle; the
// concrete graph is never exposed, so no algorithm can cheat. Following
// the paper's § "Modeling the searching process":
//
//   - In the *weak* model the searcher knows, for every discovered
//     vertex, its identity, its degree and an opaque list of incident
//     edge slots. A request names a discovered vertex u and one of its
//     edge slots; the answer is the identity of the far endpoint v plus
//     v's own degree and edge slots (v becomes discovered).
//   - In the *strong* model a request names a vertex u adjacent to an
//     already discovered vertex (or the start vertex); the answer is
//     the list of u's neighbors together with their degrees (their
//     incident edge lists). Neighbors become *visible*: identity and
//     degree known, adjacency not yet.
//
// The performance measure is the number of requests made before the
// target's identity becomes known (discovered in the weak model,
// visible or discovered in the strong model); re-reading already
// answered requests is free, since the paper grants the searcher
// unlimited memory of past answers.
package search

import (
	"errors"
	"fmt"

	"scalefree/internal/buf"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// Knowledge selects the local-knowledge model.
type Knowledge int

// Knowledge models, per the paper.
const (
	Weak Knowledge = iota + 1
	Strong
)

// String implements fmt.Stringer.
func (k Knowledge) String() string {
	switch k {
	case Weak:
		return "weak"
	case Strong:
		return "strong"
	default:
		return fmt.Sprintf("Knowledge(%d)", int(k))
	}
}

// ErrBudgetExhausted is returned by algorithms that stop after reaching
// their request budget without finding the target.
var ErrBudgetExhausted = errors.New("search: request budget exhausted")

// View is the searcher's knowledge about one vertex.
type View struct {
	ID     graph.Vertex
	Degree int
	// Resolved[slot] holds the far endpoint of the vertex's incident
	// edge in that slot, or graph.NoVertex while unknown. In the weak
	// model slots resolve one request at a time; in the strong model a
	// vertex's slots all resolve when the vertex itself is requested.
	Resolved []graph.Vertex
	// Unresolved counts the slots still equal to NoVertex.
	Unresolved int
}

// Oracle mediates all access of a searching process to the hidden
// graph, enforcing the chosen knowledge model and counting requests.
//
// All per-vertex state is held in vertex-indexed tables (length n+1)
// rather than maps, so lookups on the request hot path are O(1) array
// reads and the tables can be cleared and reused through a Scratch.
type Oracle struct {
	g         *graph.Graph
	knowledge Knowledge
	start     graph.Vertex
	target    graph.Vertex

	requests int
	found    bool

	views []*View        // vertex-indexed; nil = unknown
	order []graph.Vertex // discovery order

	// Strong model: identity+degree known, adjacency not yet requested.
	visible      []bool // vertex-indexed
	visibleOrder []graph.Vertex

	parent []graph.Vertex // discovery tree for FoundPath; NoVertex = none

	// Slot shuffling (see NewOracleShuffled): perm maps searcher-visible
	// slots to physical incidence slots, inv is its inverse. A nil
	// shuffler means identity order; per-vertex entries fill lazily.
	shuffler *rng.RNG
	perm     [][]int32
	inv      [][]int32

	// scratch, when non-nil, supplies the slab arenas behind the
	// per-vertex slices; nil falls back to fresh allocation.
	scratch *Scratch

	tracing bool
	trace   []TraceEvent
}

// NewOracle builds an oracle over g for a search starting at start and
// looking for target. Both vertices must exist; they may coincide, in
// which case the search is immediately successful with zero requests.
//
// NewOracle exposes each vertex's incident edges in physical (insertion)
// order. In evolving graphs that order correlates with edge age, which
// is MORE information than the paper's model grants — an algorithm
// could read vertex ages out of slot indices. Measurements must
// therefore use NewOracleShuffled; plain NewOracle is kept for tests
// and debugging, where predictable slots are convenient.
func NewOracle(g *graph.Graph, start, target graph.Vertex, k Knowledge) (*Oracle, error) {
	return newOracle(g, start, target, k, nil, nil)
}

// NewOracleShuffled is NewOracle with age-censored slot order: every
// vertex's incident edge list is presented through an independent
// random permutation derived from seed, so slot indices carry no
// information beyond what the paper's model reveals. All measurements
// in the repository use this constructor.
func NewOracleShuffled(g *graph.Graph, start, target graph.Vertex, k Knowledge, seed uint64) (*Oracle, error) {
	return newOracle(g, start, target, k, rng.New(rng.DeriveSeed(seed, 0x51075107)), nil)
}

// NewOracleShuffledScratch is NewOracleShuffled through a reusable
// Scratch: the oracle value, its vertex tables, the shuffler, and all
// per-vertex slices come from s, so repeated same-size searches
// allocate nothing once warm. The returned oracle is s's single live
// oracle — the next construction with the same scratch invalidates it.
// A nil scratch falls back to NewOracleShuffled.
func NewOracleShuffledScratch(g *graph.Graph, start, target graph.Vertex, k Knowledge, seed uint64, s *Scratch) (*Oracle, error) {
	if s == nil {
		return NewOracleShuffled(g, start, target, k, seed)
	}
	s.shuffler.Reseed(rng.DeriveSeed(seed, 0x51075107))
	return newOracle(g, start, target, k, &s.shuffler, s)
}

func newOracle(g *graph.Graph, start, target graph.Vertex, k Knowledge, shuffler *rng.RNG, s *Scratch) (*Oracle, error) {
	if k != Weak && k != Strong {
		return nil, fmt.Errorf("search: unknown knowledge model %d", int(k))
	}
	n := graph.Vertex(g.NumVertices())
	if start < 1 || start > n {
		return nil, fmt.Errorf("search: start vertex %d out of [1, %d]", start, n)
	}
	if target < 1 || target > n {
		return nil, fmt.Errorf("search: target vertex %d out of [1, %d]", target, n)
	}
	var o *Oracle
	if s != nil {
		// Reuse the scratch oracle's tables; every field is reassigned
		// below, so stale state cannot leak between searches.
		o = &s.oracle
		s.viewSlab.reset()
		s.slotSlab.reset()
		s.vertexSlab.reset()
	} else {
		o = &Oracle{}
	}
	o.g = g
	o.knowledge = k
	o.start = start
	o.target = target
	o.requests = 0
	o.found = false
	o.views = buf.GrowClear(o.views, int(n)+1)
	o.visible = buf.GrowClear(o.visible, int(n)+1)
	o.parent = buf.GrowClear(o.parent, int(n)+1)
	o.order = o.order[:0]
	o.visibleOrder = o.visibleOrder[:0]
	o.shuffler = shuffler
	o.perm = o.perm[:0]
	o.inv = o.inv[:0]
	if shuffler != nil {
		o.perm = buf.GrowClear(o.perm, int(n)+1)
		o.inv = buf.GrowClear(o.inv, int(n)+1)
	}
	o.scratch = s
	o.tracing = false
	o.trace = nil
	switch k {
	case Weak:
		o.discover(start, graph.NoVertex)
	case Strong:
		o.visible[start] = true
		o.visibleOrder = append(o.visibleOrder, start)
		v := o.newView()
		*v = View{ID: start, Degree: g.Degree(start)}
		o.views[start] = v
		if start == target {
			o.found = true
		}
	}
	return o, nil
}

// newView hands out one zeroed View, from the scratch slab when
// present.
func (o *Oracle) newView() *View {
	if o.scratch != nil {
		return o.scratch.viewSlab.allocOne()
	}
	return &View{}
}

// Zero-length per-vertex slices must still be non-nil: nil means
// "not built yet" for perm entries and "adjacency not yet requested"
// for strong-model Resolved tables.
var (
	emptySlots    = make([]int32, 0)
	emptyVertices = make([]graph.Vertex, 0)
)

// allocSlots hands out a zeroed int32 slice of length n for slot
// permutations, from the scratch slab when present.
func (o *Oracle) allocSlots(n int) []int32 {
	if n == 0 {
		return emptySlots
	}
	if o.scratch != nil {
		return o.scratch.slotSlab.alloc(n)
	}
	return make([]int32, n)
}

// allocVertices hands out a zeroed vertex slice of length n for
// resolved-endpoint tables, from the scratch slab when present.
func (o *Oracle) allocVertices(n int) []graph.Vertex {
	if n == 0 {
		return emptyVertices
	}
	if o.scratch != nil {
		return o.scratch.vertexSlab.alloc(n)
	}
	return make([]graph.Vertex, n)
}

// ensurePerm lazily builds the visible→physical slot permutation (and
// its inverse) for v when shuffling is on.
func (o *Oracle) ensurePerm(v graph.Vertex) {
	if o.shuffler == nil {
		return
	}
	if o.perm[v] != nil {
		return
	}
	deg := o.g.Degree(v)
	p := o.allocSlots(deg)
	inv := o.allocSlots(deg)
	for i := range p {
		p[i] = int32(i)
	}
	o.shuffler.Shuffle(deg, func(i, j int) { p[i], p[j] = p[j], p[i] })
	for vis, phys := range p {
		inv[phys] = int32(vis)
	}
	o.perm[v] = p
	o.inv[v] = inv
}

// physSlot translates a searcher-visible slot of v to the physical
// incidence index.
func (o *Oracle) physSlot(v graph.Vertex, vis int) int {
	if o.shuffler == nil {
		return vis
	}
	o.ensurePerm(v)
	return int(o.perm[v][vis])
}

// visSlot translates a physical incidence index of v to the slot the
// searcher sees.
func (o *Oracle) visSlot(v graph.Vertex, phys int) int {
	if o.shuffler == nil {
		return phys
	}
	o.ensurePerm(v)
	return int(o.inv[v][phys])
}

// Knowledge returns the active model.
func (o *Oracle) Knowledge() Knowledge { return o.knowledge }

// Start returns the initial vertex.
func (o *Oracle) Start() graph.Vertex { return o.start }

// Target returns the identity the searcher is looking for. (The
// searcher always knows the label it wants; the paper's identities are
// the range [1, n].)
func (o *Oracle) Target() graph.Vertex { return o.target }

// NumVertices exposes n, the size of the identity space — public
// knowledge in the paper's labelled-graph setting.
func (o *Oracle) NumVertices() int { return o.g.NumVertices() }

// Requests returns the number of requests made so far.
func (o *Oracle) Requests() int { return o.requests }

// Found reports whether the target's identity has been revealed.
func (o *Oracle) Found() bool { return o.found }

// Discovered returns the discovered vertices in discovery order. The
// slice is shared; callers must not modify it.
func (o *Oracle) Discovered() []graph.Vertex { return o.order }

// ViewOf returns the searcher's knowledge about v, if any. The
// returned view is shared state owned by the oracle; callers must
// treat it as read-only.
func (o *Oracle) ViewOf(v graph.Vertex) (*View, bool) {
	if v < 1 || int(v) >= len(o.views) {
		return nil, false
	}
	view := o.views[v]
	return view, view != nil
}

// discover adds v to the discovered set with a fresh weak-model view.
func (o *Oracle) discover(v, from graph.Vertex) {
	if o.views[v] != nil {
		return
	}
	deg := o.g.Degree(v)
	view := o.newView()
	*view = View{
		ID:         v,
		Degree:     deg,
		Resolved:   o.allocVertices(deg),
		Unresolved: deg,
	}
	o.views[v] = view
	o.order = append(o.order, v)
	if from != graph.NoVertex {
		o.parent[v] = from
	}
	if v == o.target {
		o.found = true
	}
}

// RequestEdge performs a weak-model request (u, slot): it reveals the
// far endpoint of u's incident edge in the given slot and returns its
// identity. The request is free when the slot was already resolved
// (the searcher re-reads its own knowledge); otherwise it costs one
// request. newInfo reports whether the call consumed a request.
func (o *Oracle) RequestEdge(u graph.Vertex, slot int) (v graph.Vertex, newInfo bool, err error) {
	if o.knowledge != Weak {
		return graph.NoVertex, false, fmt.Errorf("search: RequestEdge in %v model", o.knowledge)
	}
	if u < 1 || int(u) >= len(o.views) || o.views[u] == nil {
		return graph.NoVertex, false, fmt.Errorf("search: RequestEdge on undiscovered vertex %d", u)
	}
	view := o.views[u]
	if slot < 0 || slot >= view.Degree {
		return graph.NoVertex, false, fmt.Errorf("search: RequestEdge slot %d out of [0, %d) for vertex %d", slot, view.Degree, u)
	}
	if w := view.Resolved[slot]; w != graph.NoVertex {
		return w, false, nil
	}
	o.requests++
	half := o.g.HalfAt(u, o.physSlot(u, slot))
	v = half.Other
	o.resolveSlot(view, slot, v)
	o.discover(v, u)
	// The answer includes v's incident edge list; the searcher can see
	// which of v's slots carries this very edge, so resolve the
	// matching reverse slot(s).
	o.resolveReverse(v, half.Edge, u)
	o.record(TraceEvent{Kind: TraceEdgeRequest, Subject: u, Slot: slot, Revealed: v})
	return v, true, nil
}

// resolveSlot marks one slot of a view resolved.
func (o *Oracle) resolveSlot(view *View, slot int, w graph.Vertex) {
	if view.Resolved[slot] == graph.NoVertex {
		view.Resolved[slot] = w
		view.Unresolved--
	}
}

// resolveReverse resolves, in v's view, every slot carrying the given
// edge (both halves for a self-loop).
func (o *Oracle) resolveReverse(v graph.Vertex, e graph.EdgeID, far graph.Vertex) {
	view := o.views[v]
	if view == nil {
		return
	}
	for phys, h := range o.g.Incident(v) {
		if h.Edge == e {
			o.resolveSlot(view, o.visSlot(v, phys), far)
		}
	}
}

// Visible returns, in first-seen order, the strong-model frontier:
// vertices whose identity and degree are known but whose adjacency has
// not been requested yet. The returned slice is freshly allocated. It
// is only meaningful in the strong model.
func (o *Oracle) Visible() []graph.Vertex {
	frontier := o.visibleOrder[:0:0]
	for _, v := range o.visibleOrder {
		if o.visible[v] {
			frontier = append(frontier, v)
		}
	}
	return frontier
}

// IsVisible reports whether v is currently in the strong-model
// frontier.
func (o *Oracle) IsVisible(v graph.Vertex) bool {
	return v >= 1 && int(v) < len(o.visible) && o.visible[v]
}

// RequestVertex performs a strong-model request on a visible vertex u:
// the answer is u's neighbor multiset with degrees. u moves from
// visible to discovered; its neighbors become visible. Requesting an
// already discovered vertex is free and returns the cached answer.
func (o *Oracle) RequestVertex(u graph.Vertex) (neighbors []graph.Vertex, newInfo bool, err error) {
	if o.knowledge != Strong {
		return nil, false, fmt.Errorf("search: RequestVertex in %v model", o.knowledge)
	}
	if u >= 1 && int(u) < len(o.views) {
		if view := o.views[u]; view != nil && view.Resolved != nil {
			return view.Resolved, false, nil // already discovered: free re-read
		}
	}
	if !o.IsVisible(u) {
		return nil, false, fmt.Errorf("search: RequestVertex on vertex %d not adjacent to a discovered vertex", u)
	}
	o.requests++
	o.visible[u] = false
	view := o.views[u]
	view.Resolved = o.allocVertices(view.Degree)
	view.Unresolved = 0
	o.order = append(o.order, u)
	if u == o.target {
		o.found = true
	}
	for phys, h := range o.g.Incident(u) {
		w := h.Other
		view.Resolved[o.visSlot(u, phys)] = w
		if o.views[w] == nil {
			nv := o.newView()
			*nv = View{ID: w, Degree: o.g.Degree(w)}
			o.views[w] = nv
			o.visible[w] = true
			o.visibleOrder = append(o.visibleOrder, w)
			o.parent[w] = u
			if w == o.target {
				o.found = true
			}
		}
	}
	o.record(TraceEvent{Kind: TraceVertexRequest, Subject: u, Slot: -1, Revealed: graph.NoVertex})
	return view.Resolved, true, nil
}

// FoundPath reconstructs a start→target path from the discovery tree
// once Found is true. The path is a witness that the search process
// has genuinely located the target through revealed edges.
func (o *Oracle) FoundPath() ([]graph.Vertex, error) {
	if !o.found {
		return nil, errors.New("search: FoundPath before the target was found")
	}
	path := []graph.Vertex{o.target}
	seen := map[graph.Vertex]bool{o.target: true}
	cur := o.target
	for cur != o.start {
		p := o.parent[cur]
		if p == graph.NoVertex {
			return nil, fmt.Errorf("search: discovery tree broken at vertex %d", cur)
		}
		if seen[p] {
			return nil, fmt.Errorf("search: discovery tree cycle at vertex %d", p)
		}
		seen[p] = true
		path = append(path, p)
		cur = p
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}
