package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check, shaped like
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate
// onto the upstream driver wholesale if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and
	// //sflint:ignore directives.
	Name string
	// Doc is the one-paragraph description `sflint -list` prints.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// Analyzers is the sflint suite in reporting order.
var Analyzers = []*Analyzer{
	Determinism,
	LockOrder,
	HotPath,
	CodecReg,
}

// AnalyzerByName looks an analyzer up by its diagnostic name.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Notes holds the package's parsed //sf: annotations.
	Notes *Notes

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, located in the source.
type Diagnostic struct {
	Position token.Position `json:"-"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional
// file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer —
// the stable order every output mode uses.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
