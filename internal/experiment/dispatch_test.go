package experiment

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"scalefree/internal/engine"
	"scalefree/internal/sweep"
)

// TestGoldenSharding is the subsystem's headline guarantee: for every
// registered experiment, executing the plan shard by shard (exactly as
// k separate processes would) and merging the shard files renders
// tables byte-identical to the single-process -workers 1 run. k=1 exercises
// the degenerate partition, k=2 the even/odd split, k=5 shards with
// uneven sizes (and, for small plans, possibly empty shards).
func TestGoldenSharding(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	cfg := Config{Seed: 2024, Scale: 0.05}
	for _, exp := range Registry() {
		t.Run(exp.ID, func(t *testing.T) {
			serialTables, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			golden := renderAll(t, serialTables)
			for _, k := range []int{1, 2, 5} {
				dir := t.TempDir()
				var paths []string
				for i := 0; i < k; i++ {
					spec := sweep.ShardSpec{Index: i, Count: k}
					path := filepath.Join(dir, exp.ShardFileName(spec))
					if _, err := exp.RunShard(context.Background(), cfg, spec, engine.Options{}, nil, path, false); err != nil {
						t.Fatalf("k=%d shard %d: %v", k, i, err)
					}
					paths = append(paths, path)
				}
				merged, err := exp.MergeShardFiles(cfg, paths)
				if err != nil {
					t.Fatalf("k=%d merge: %v", k, err)
				}
				if got := renderAll(t, merged); got != golden {
					t.Errorf("k=%d: merged output diverges from single-process run:\n--- merged ---\n%s\n--- single ---\n%s",
						k, got, golden)
				}
			}
		})
	}
}

// TestMergeRejectsForeignConfig: shard files from one Config must not
// merge under another — the fingerprint pins seed and scale.
func TestMergeRejectsForeignConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	dir := t.TempDir()
	spec := sweep.ShardSpec{Index: 0, Count: 1}
	path := filepath.Join(dir, exp.ShardFileName(spec))
	if _, err := exp.RunShard(context.Background(), cfg, spec, engine.Options{}, nil, path, false); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.MergeShardFiles(Config{Seed: 9, Scale: 0.05}, []string{path}); err == nil {
		t.Error("merge under a different seed succeeded")
	}
	other, _ := ByID("E11")
	if _, err := other.MergeShardFiles(cfg, []string{path}); err == nil {
		t.Error("merge under a different experiment succeeded")
	}
}

// TestCacheResume interrupts a cached sweep mid-run, resumes it, and
// requires (a) byte-identical tables and (b) zero re-executed trials
// for every entry that reached the cache before the interruption.
func TestCacheResume(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	plan, err := exp.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(plan.Trials)
	if total < 8 {
		t.Fatalf("E4 plan too small to interrupt meaningfully: %d trials", total)
	}

	golden, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, golden)

	cache, err := sweep.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after 5 completed trials.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const interruptAfter = 5
	opts := engine.Options{Workers: 1, Progress: func(p engine.Progress) {
		if p.Done == interruptAfter {
			cancel()
		}
	}}
	_, stats, err := exp.RunCached(ctx, cfg, opts, cache)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if stats.Executed != interruptAfter {
		t.Fatalf("interrupted run persisted %d trials, want %d", stats.Executed, interruptAfter)
	}

	// Resume: cached entries splice in without re-execution.
	tables, stats, err := exp.RunCached(context.Background(), cfg, engine.Options{Workers: 3}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != interruptAfter {
		t.Errorf("resume: %d cache hits, want %d", stats.CacheHits, interruptAfter)
	}
	if stats.Executed != total-interruptAfter {
		t.Errorf("resume: executed %d trials, want %d", stats.Executed, total-interruptAfter)
	}
	if got := renderAll(t, tables); got != want {
		t.Errorf("resumed output diverges from uncached run:\n--- resumed ---\n%s\n--- golden ---\n%s", got, want)
	}

	// A fully warm cache re-reduces without executing anything.
	tables, stats, err = exp.RunCached(context.Background(), cfg, engine.Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 || stats.CacheHits != total {
		t.Errorf("warm run: stats %+v, want 0 executed / %d hits", stats, total)
	}
	if got := renderAll(t, tables); got != want {
		t.Error("warm-cache output diverges")
	}
}

// TestShardResume re-runs a completed shard with -resume semantics:
// the existing file satisfies every trial, nothing executes, and the
// rewritten file still merges to byte-identical tables.
func TestShardResume(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	dir := t.TempDir()
	const k = 2
	var paths []string
	for i := 0; i < k; i++ {
		spec := sweep.ShardSpec{Index: i, Count: k}
		path := filepath.Join(dir, exp.ShardFileName(spec))
		stats, err := exp.RunShard(context.Background(), cfg, spec, engine.Options{}, nil, path, false)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Executed == 0 {
			t.Fatalf("shard %d executed nothing", i)
		}
		paths = append(paths, path)
	}

	// Resume over complete files: pure reuse.
	for i := 0; i < k; i++ {
		spec := sweep.ShardSpec{Index: i, Count: k}
		stats, err := exp.RunShard(context.Background(), cfg, spec, engine.Options{}, nil, paths[i], true)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Executed != 0 {
			t.Errorf("resumed shard %d re-executed %d trials", i, stats.Executed)
		}
		if stats.CacheHits == 0 {
			t.Errorf("resumed shard %d reused nothing", i)
		}
	}

	// Resume against a mismatched run is an error, not a merge hazard.
	spec := sweep.ShardSpec{Index: 0, Count: k}
	if _, err := exp.RunShard(context.Background(), Config{Seed: 1, Scale: 0.05}, spec, engine.Options{}, nil, paths[0], true); err == nil {
		t.Error("resume under a different seed accepted a stale shard file")
	}

	merged, err := exp.MergeShardFiles(cfg, paths)
	if err != nil {
		t.Fatal(err)
	}
	single, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(t, merged) != renderAll(t, single) {
		t.Error("resumed shards merged to different tables")
	}
}

// TestFingerprintDistinguishesConfigs guards the addressing scheme:
// scale, seed, and experiment all land in the fingerprint.
func TestFingerprintDistinguishesConfigs(t *testing.T) {
	exp, _ := ByID("E4")
	base, err := exp.Fingerprint(Config{Seed: 2024, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if fp, _ := exp.Fingerprint(Config{Seed: 2024, Scale: 0.05}); fp != base {
		t.Error("fingerprint not deterministic")
	}
	if fp, _ := exp.Fingerprint(Config{Seed: 7, Scale: 0.05}); fp == base {
		t.Error("fingerprint ignores seed")
	}
	if fp, _ := exp.Fingerprint(Config{Seed: 2024, Scale: 0.1}); fp == base {
		t.Error("fingerprint ignores scale")
	}
	other, _ := ByID("E11")
	if fp, _ := other.Fingerprint(Config{Seed: 2024, Scale: 0.05}); fp == base {
		t.Error("fingerprint ignores experiment")
	}
}
