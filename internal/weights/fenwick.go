// Package weights provides weighted random sampling structures used by
// the preferential-attachment graph generators:
//
//   - EndpointArray: the append-only endpoint-array trick, O(1) per
//     record and per draw for exact hit-count weights — the production
//     sampler behind every generator hot loop;
//   - Fenwick: a binary indexed tree over integer weights with O(log n)
//     increment and O(log n) proportional sampling — the reference
//     implementation the production path is validated against;
//   - Alias: Walker's alias method for O(1) sampling from a fixed
//     discrete distribution, used when the weights are static.
//
// A design note (ablation in bench_test.go, DESIGN.md §5.2): the
// endpoint array supports only weights that are exact hit counts,
// while the Fenwick tree supports arbitrary integer weights. The Móri
// and Cooper–Frieze mixtures p·d(u) + (1−p) look like they need the
// general tree, but both generators flip the exact coin between the
// aggregate preferential mass and the aggregate uniform mass *before*
// drawing a vertex — after the flip the preferential draw is pure
// hit-count, so the O(1) array serves the hot loops exactly
// (GenerateTreeFenwick / Config.GenerateFenwick keep the O(log n)
// reference paths alive for the ablation benchmark and the chi-square
// equivalence tests). Switching samplers changes how many random draws
// each step consumes, so the swap was a one-time seed→output break;
// determinism across worker counts is unaffected.
package weights

import (
	"fmt"
	"math/bits"

	"scalefree/internal/rng"
)

// Fenwick is a binary indexed tree over non-negative int64 weights for
// items indexed 1..n. The zero value is unusable; call NewFenwick.
type Fenwick struct {
	tree []int64 // 1-based; tree[i] covers a block ending at i
	n    int
	mask int // highest power of two <= n, for O(log n) sampling descent
}

// NewFenwick returns a tree over items 1..n, all with weight zero.
func NewFenwick(n int) *Fenwick {
	if n < 0 {
		panic(fmt.Sprintf("weights: NewFenwick(%d)", n))
	}
	mask := 0
	if n > 0 {
		mask = 1 << (bits.Len(uint(n)) - 1)
	}
	return &Fenwick{tree: make([]int64, n+1), n: n, mask: mask}
}

// Len returns the number of items.
func (f *Fenwick) Len() int { return f.n }

// Add increases the weight of item i (1-based) by delta. The resulting
// weight must remain non-negative, which Add does not check for speed;
// Weight can be used to audit in tests.
func (f *Fenwick) Add(i int, delta int64) {
	if i < 1 || i > f.n {
		panic(fmt.Sprintf("weights: Fenwick.Add index %d out of [1, %d]", i, f.n))
	}
	for ; i <= f.n; i += i & -i {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of weights of items 1..i.
func (f *Fenwick) PrefixSum(i int) int64 {
	if i > f.n {
		i = f.n
	}
	var s int64
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// Total returns the sum of all weights.
func (f *Fenwick) Total() int64 { return f.PrefixSum(f.n) }

// Weight returns the weight of item i.
func (f *Fenwick) Weight(i int) int64 {
	if i < 1 || i > f.n {
		panic(fmt.Sprintf("weights: Fenwick.Weight index %d out of [1, %d]", i, f.n))
	}
	return f.PrefixSum(i) - f.PrefixSum(i-1)
}

// Sample draws an item with probability proportional to its weight.
// It panics when the total weight is zero.
func (f *Fenwick) Sample(r *rng.RNG) int {
	total := f.Total()
	if total <= 0 {
		panic("weights: Fenwick.Sample on empty distribution")
	}
	target := int64(r.Uint64n(uint64(total)))
	return f.find(target)
}

// find returns the smallest index i with PrefixSum(i) > target, by
// binary descent over the implicit tree.
func (f *Fenwick) find(target int64) int {
	idx := 0
	for step := f.mask; step > 0; step >>= 1 {
		next := idx + step
		if next <= f.n && f.tree[next] <= target {
			idx = next
			target -= f.tree[next]
		}
	}
	return idx + 1
}

// Alias is Walker's alias table: O(1) sampling from a fixed discrete
// distribution over {0, ..., n-1}. Build once with NewAlias.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights, at least
// one of which must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("weights: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("weights: alias weight %d is negative (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("weights: alias weights sum to %v", total)
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers; probability is within rounding of 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws an index with probability proportional to its weight.
func (a *Alias) Sample(r *rng.RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the support size.
func (a *Alias) Len() int { return len(a.prob) }
