package search

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

func scratchTestGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := mori.Config{N: n, M: 2, P: 0.5}.Generate(rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// exploreWeak walks every discovered vertex's slots breadth-first until
// the target is found or knowledge is exhausted, returning the request
// count. It touches every oracle path of the weak model.
func exploreWeak(t testing.TB, o *Oracle) int {
	t.Helper()
	for i := 0; i < len(o.Discovered()); i++ {
		u := o.Discovered()[i]
		view, ok := o.ViewOf(u)
		if !ok {
			t.Fatal("discovered vertex without view")
		}
		for slot := 0; slot < view.Degree; slot++ {
			if _, _, err := o.RequestEdge(u, slot); err != nil {
				t.Fatal(err)
			}
			if o.Found() {
				return o.Requests()
			}
		}
	}
	return o.Requests()
}

// exploreStrong expands the visible frontier in discovery order.
func exploreStrong(t testing.TB, o *Oracle) int {
	t.Helper()
	for !o.Found() {
		frontier := o.Visible()
		if len(frontier) == 0 {
			break
		}
		for _, u := range frontier {
			if _, _, err := o.RequestVertex(u); err != nil {
				t.Fatal(err)
			}
			if o.Found() {
				break
			}
		}
	}
	return o.Requests()
}

// TestOracleScratchMatchesFresh pins the scratch-backed oracle to the
// allocating one: identical requests, discovery order, and outcome for
// both knowledge models, across repeated reuse of one scratch.
func TestOracleScratchMatchesFresh(t *testing.T) {
	g := scratchTestGraph(t, 120, 5)
	target := graph.Vertex(g.NumVertices())
	var s Scratch
	for _, k := range []Knowledge{Weak, Strong} {
		for seed := uint64(1); seed <= 4; seed++ {
			fresh, err := NewOracleShuffled(g, 1, target, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := NewOracleShuffledScratch(g, 1, target, k, seed, &s)
			if err != nil {
				t.Fatal(err)
			}
			var wantReq, gotReq int
			if k == Weak {
				wantReq, gotReq = exploreWeak(t, fresh), exploreWeak(t, reused)
			} else {
				wantReq, gotReq = exploreStrong(t, fresh), exploreStrong(t, reused)
			}
			if wantReq != gotReq || fresh.Found() != reused.Found() {
				t.Fatalf("%v seed %d: fresh (req=%d found=%v) vs scratch (req=%d found=%v)",
					k, seed, wantReq, fresh.Found(), gotReq, reused.Found())
			}
			wd, gd := fresh.Discovered(), reused.Discovered()
			if len(wd) != len(gd) {
				t.Fatalf("%v seed %d: discovery order lengths %d vs %d", k, seed, len(wd), len(gd))
			}
			for i := range wd {
				if wd[i] != gd[i] {
					t.Fatalf("%v seed %d: discovery order diverges at %d", k, seed, i)
				}
			}
		}
	}
}

// TestOracleScratchAllocFree pins the steady state: after warm-up
// searches over a fixed-size graph, a full weak-model exploration
// through a scratch-backed oracle allocates nothing.
func TestOracleScratchAllocFree(t *testing.T) {
	g := scratchTestGraph(t, 200, 7)
	target := graph.Vertex(g.NumVertices())
	var s Scratch
	run := func() {
		o, err := NewOracleShuffledScratch(g, 1, target, Weak, 3, &s)
		if err != nil {
			t.Fatal(err)
		}
		exploreWeak(t, o)
	}
	// Warm-up rounds let the slab arenas converge on their capacity.
	for i := 0; i < 5; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(10, run); allocs > 0 {
		t.Errorf("steady-state scratch-backed weak search allocates %v times per run, want 0", allocs)
	}
}
