// Command experiments runs the paper-reproduction experiment suite
// (E1–E10, see DESIGN.md) and prints the EXPERIMENTS.md tables.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale 1.0] [-seed 2024] [-csv dir]
//
// -scale shrinks workload sizes and replication counts proportionally
// (0.1 gives a quick smoke run); -csv additionally writes every table
// as a CSV file into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"scalefree/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runList = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full EXPERIMENTS.md workload)")
		seed    = flag.Uint64("seed", 2024, "master seed")
		csvDir  = flag.String("csv", "", "directory to also write per-table CSV files (optional)")
	)
	flag.Parse()

	var selected []experiment.Experiment
	if *runList == "all" {
		selected = experiment.Registry()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: E1..E10)", id)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	cfg := experiment.Config{Seed: *seed, Scale: *scale}
	for _, e := range selected {
		fmt.Printf("=== %s: %s (scale %.2f, seed %d)\n", e.ID, e.Title, *scale, *seed)
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("    completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		for ti, tab := range tables {
			if err := tab.Render(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					return fmt.Errorf("creating %s: %w", name, err)
				}
				if err := tab.CSV(f); err != nil {
					f.Close()
					return fmt.Errorf("writing %s: %w", name, err)
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("closing %s: %w", name, err)
				}
			}
		}
	}
	return nil
}
