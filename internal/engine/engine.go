// Package engine executes experiment trials on a bounded worker pool.
//
// A Trial is the unit of parallel work: an index into its plan, a
// human-readable key, and a derived seed. Run executes a pure trial
// function over a slice of trials and returns the results in trial
// order, so a deterministic reduction over the result slice produces
// output that is bit-identical regardless of the worker count. The
// contract the caller must honour is that the trial function depends
// only on (Trial, r) — never on shared mutable state or on the order
// in which other trials complete. Shared *read-only* state (a graph
// generated at plan time, an algorithm value) is fine.
//
// Each trial gets a private RNG seeded from Trial.Seed, which is the
// rng package's intended concurrency model: one generator per
// goroutine, streams fanned out with rng.DeriveSeed.
//
// RunScratch extends the contract with per-worker scratch state: each
// worker goroutine owns one scratch value (built by a factory at worker
// start) that is handed to every trial the worker executes. Scratch is
// for reusable buffers only — trial *results* must still be a pure
// function of (Trial, r), so a trial may use the scratch's memory but
// never read information another trial left behind. This is what makes
// repeated fixed-size trials allocation-free without breaking the
// bit-identical-across-worker-counts guarantee.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scalefree/internal/obs/trace"
	"scalefree/internal/rng"
)

// Trial identifies one independent unit of work inside a plan.
type Trial struct {
	// Index is the trial's position in the plan; Run places its result
	// at this position in the returned slice.
	Index int
	// Key labels the trial for progress output and error messages,
	// e.g. "E1/p=0.25/m=1/degree-greedy-weak/n=512/rep=3".
	Key string
	// Seed seeds the trial's private RNG.
	Seed uint64
}

// Progress reports the completion of one trial. Done counts completed
// trials (successful or not) across the whole run.
type Progress struct {
	Done    int
	Total   int
	Trial   Trial
	Elapsed time.Duration
	Err     error
}

// Options configures one engine run.
type Options struct {
	// Workers bounds the number of concurrently executing trials.
	// Values <= 0 default to runtime.GOMAXPROCS(0).
	Workers int
	// Progress, if non-nil, is invoked after every trial completes.
	// Calls are serialized under a lock; keep the callback fast.
	Progress func(Progress)
	// Trace, if non-nil, records a span per trial into a per-worker
	// trace writer. Scratch values implementing trace.Attacher receive
	// the worker's writer so trial phases can record child spans.
	// Tracing observes the run; results are unaffected.
	Trace *trace.Recorder
}

func (o Options) effectiveWorkers(trials int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > trials {
		w = trials
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn over trials on a bounded worker pool and returns the
// results in trial order. The first trial error cancels the run (no new
// trials start; in-flight trials finish) and is returned wrapped with
// its trial key; with several concurrent failures the lowest-indexed
// one that actually ran wins, so single-failure error reporting is
// deterministic. Cancellation of ctx likewise stops the run and
// surfaces ctx.Err(). A panicking trial is recovered and reported as an
// error rather than tearing down the process.
func Run[T any](ctx context.Context, trials []Trial, opts Options, fn func(ctx context.Context, t Trial, r *rng.RNG) (T, error)) ([]T, error) {
	return RunScratch(ctx, trials, opts,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, t Trial, r *rng.RNG, _ struct{}) (T, error) {
			return fn(ctx, t, r)
		})
}

// RunScratch is Run with per-worker scratch state: newScratch is called
// once per worker goroutine and the resulting value is passed to every
// trial that worker executes, so trials of the same shape can reuse
// buffers instead of re-allocating. newScratch may return nil (for
// pointer-typed scratch); fn must then fall back to fresh allocation.
// See the package comment for the purity contract scratch must honour.
func RunScratch[T, S any](ctx context.Context, trials []Trial, opts Options, newScratch func() S, fn func(ctx context.Context, t Trial, r *rng.RNG, scratch S) (T, error)) ([]T, error) {
	results := make([]T, len(trials))
	if len(trials) == 0 {
		return results, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next atomic.Int64
		errs = make([]error, len(trials))
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	report := func(t Trial, elapsed time.Duration, err error) {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		opts.Progress(Progress{Done: done, Total: len(trials), Trial: t, Elapsed: elapsed, Err: err})
	}
	for w := opts.effectiveWorkers(len(trials)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			var tw *trace.Writer
			if opts.Trace != nil {
				tw = opts.Trace.Writer()
				defer opts.Trace.Release(tw)
				if a, ok := any(scratch).(trace.Attacher); ok {
					a.AttachTrace(tw)
				}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(trials) {
					return
				}
				if ctx.Err() != nil {
					// Drain without running: the run is already doomed,
					// and skipped trials must not masquerade as failures.
					continue
				}
				tw.Begin(trials[i].Key, "trial")
				res, elapsed, err := timedTrial(ctx, trials[i], scratch, fn)
				tw.End()
				if err != nil {
					errs[i] = err
					cancel()
				} else {
					results[i] = res
				}
				report(trials[i], elapsed, err)
			}
		}()
	}
	wg.Wait()

	// Prefer a real failure over a cancellation echo: a context-aware
	// trial that returns ctx.Err() after another trial failed must not
	// mask the root cause. Within each class the lowest index wins, so
	// single-failure reporting is deterministic.
	cancelledIdx := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelledIdx < 0 {
				cancelledIdx = i
			}
			continue
		}
		return nil, fmt.Errorf("engine: trial %d (%s): %w", i, trials[i].Key, err)
	}
	if cancelledIdx >= 0 {
		return nil, fmt.Errorf("engine: trial %d (%s): %w",
			cancelledIdx, trials[cancelledIdx].Key, errs[cancelledIdx])
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runTrial runs one trial with a fresh RNG, converting panics into
// errors so one bad trial cannot take down the pool.
// timedTrial runs one trial and measures its wall-clock duration. The
// duration feeds only Progress.Elapsed; it never reaches a result, so
// this is the single sanctioned wall-clock read in the engine.
//
//sf:wallclock — per-trial elapsed time is progress output only.
func timedTrial[T, S any](ctx context.Context, t Trial, scratch S, fn func(ctx context.Context, t Trial, r *rng.RNG, scratch S) (T, error)) (T, time.Duration, error) {
	start := time.Now()
	res, err := runTrial(ctx, t, scratch, fn)
	return res, time.Since(start), err
}

func runTrial[T, S any](ctx context.Context, t Trial, scratch S, fn func(ctx context.Context, t Trial, r *rng.RNG, scratch S) (T, error)) (res T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: trial panicked: %v", p)
		}
	}()
	return fn(ctx, t, rng.New(t.Seed), scratch)
}
