// Package cooperfrieze implements the Cooper–Frieze general model of
// evolving web graphs, the second graph family covered by the paper's
// Ω(√n) non-searchability theorem (Theorem 2).
//
// Following the paper's informal description (and its rephrasing of
// preferential choices to use indegree), the process starts from a
// small seed and at each step:
//
//   - with probability α runs procedure New: a new vertex arrives with
//     j outgoing edges, j drawn from the distribution q; each terminal
//     is chosen preferentially (proportionally to indegree) with
//     probability β, uniformly otherwise;
//   - with probability 1−α runs procedure Old: an existing vertex is
//     selected (uniformly with probability δ, preferentially by
//     indegree otherwise) and emits j new outgoing edges, j drawn from
//     the distribution p; each terminal is chosen preferentially with
//     probability γ, uniformly otherwise.
//
// Vertex identities equal arrival order, so — as in the Móri model —
// identity n is the youngest vertex and the hard search target.
// Generation stops once N vertices exist; because every new vertex
// emits at least one edge on arrival, the graph is connected by
// construction (the seed is vertex 1 with a self-loop, which gives the
// preferential choice its initial mass, as in the original model).
//
// Every preferential/uniform mixture in the process flips its coin
// before drawing a vertex, so the preferential draw is pure hit-count
// sampling and the generator runs on the O(1) endpoint array
// (weights.EndpointArray): an N-vertex graph costs O(N) expected time
// and O(1) allocations (amortized zero with a Scratch).
// GenerateFenwick keeps the historical O(N log N) Fenwick-tree path as
// the reference implementation (chi-square equivalence in the tests,
// BenchmarkGenerateCooperFrieze for the speedup); the two consume RNG
// streams differently, so equal seeds yield different (identically
// distributed) graphs.
package cooperfrieze

import (
	"fmt"
	"math"

	"scalefree/internal/buf"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// Config parameterizes the Cooper–Frieze process. The zero value is
// invalid; all probabilities must lie in [0, 1] with 0 < Alpha <= 1,
// and the out-degree distributions assign weight i+1 edges to index i
// (so they can never draw zero edges).
type Config struct {
	N     int     // number of vertices, >= 2
	Alpha float64 // P(procedure New); must be positive or N is never reached
	Beta  float64 // P(New-edge terminal is preferential)
	Gamma float64 // P(Old-edge terminal is preferential)
	Delta float64 // P(Old source is chosen uniformly)

	// QWeights[i] is the weight of a New vertex emitting i+1 edges.
	// Defaults to {1} (always one edge).
	QWeights []float64
	// PWeights[i] is the weight of an Old step emitting i+1 edges.
	// Defaults to {1}.
	PWeights []float64

	// AllowLoops permits an Old step to pick its source as a terminal
	// (the original model allows loops). When false, loop draws are
	// retried a bounded number of times and then fall back to a uniform
	// non-source vertex.
	AllowLoops bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("cooperfrieze: N = %d < 2", c.N)
	}
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("cooperfrieze: Alpha = %v out of (0, 1]", c.Alpha)
	}
	probs := []struct {
		name string
		v    float64
	}{{"Beta", c.Beta}, {"Gamma", c.Gamma}, {"Delta", c.Delta}}
	for _, p := range probs {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("cooperfrieze: %s = %v out of [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// Result carries the generated graph together with process metadata.
type Result struct {
	Graph    *graph.Graph
	Steps    int // total process steps (New + Old)
	OldSteps int
	// ArrivalOutDeg[v] is the number of out-edges vertex v emitted on
	// arrival (its procedure-New edges). Comparing it with the final
	// out-degree tells whether v was later selected as an Old-step
	// source — one of the conditions of the equivalence event behind
	// Theorem 2.
	ArrivalOutDeg []int
}

// Generate runs the process until N vertices exist and returns the
// frozen graph. Vertex 1 is the seed (with a self-loop); vertices are
// numbered by arrival.
func (c Config) Generate(r *rng.RNG) (*Result, error) {
	return c.GenerateScratch(r, new(Scratch))
}

// Scratch holds the reusable buffers of one generation worker: the
// edge-list builder, its CSR snapshot, the endpoint array, and the
// Result with its arrival-degree record. The zero value is ready to
// use; after a warm-up generation, repeated same-size GenerateScratch
// calls stay allocation-free apart from the small out-degree
// distribution tables (O(1) per call).
type Scratch struct {
	builder graph.Builder
	g       graph.Graph
	ends    weights.EndpointArray
	res     Result
}

// GenerateScratch is Generate drawing the identical distribution (and,
// for equal seeds, the identical graph) through s's reusable buffers.
// The returned Result and its graph alias s and are valid until the
// next call with the same scratch; callers that outlive the scratch
// must copy (or use Generate, which allocates a private scratch).
func (c Config) GenerateScratch(r *rng.RNG, s *Scratch) (*Result, error) {
	if s == nil {
		return c.Generate(r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	qDist, err := outDegreeDist(c.QWeights, "QWeights")
	if err != nil {
		return nil, err
	}
	pDist, err := outDegreeDist(c.PWeights, "PWeights")
	if err != nil {
		return nil, err
	}

	// Size the edge arrays for the expected step count N/alpha (plus
	// the mean out-degrees' pull above one edge per step, covered by
	// the slack factor); append growth handles the tail of the
	// distribution, so the hint only tunes first-touch cost.
	edgeHint := int(float64(c.N)/c.Alpha) + c.N/2
	b := &s.builder
	b.Reset(c.N, edgeHint)
	s.ends.Reset(edgeHint)
	ends := &s.ends

	// Seed: vertex 1 with a self-loop so preferential mass is positive.
	b.AddVertex()
	b.AddEdge(1, 1)
	ends.Record(1)

	res := &s.res
	res.Graph = nil
	res.Steps, res.OldSteps = 0, 0
	res.ArrivalOutDeg = buf.GrowClear(res.ArrivalOutDeg, c.N+1)
	res.ArrivalOutDeg[1] = 1 // the seed loop
	for b.NumVertices() < c.N {
		res.Steps++
		// While only the seed exists, an Old step without loops has no
		// legal terminal, so procedure New is forced in that case.
		mustNew := !c.AllowLoops && b.NumVertices() == 1
		if mustNew || r.Bernoulli(c.Alpha) {
			v := b.AddVertex()
			edges := qDist.Sample(r) + 1
			res.ArrivalOutDeg[v] = edges
			for i := 0; i < edges; i++ {
				// New-vertex edges go to older vertices only, as in the
				// Móri model: the eligible range excludes v itself.
				w := c.pickTerminal(r, ends, c.Beta, v, int(v)-1)
				b.AddEdge(v, w)
				ends.Record(int32(w))
			}
			continue
		}
		res.OldSteps++
		src := c.pickOldSource(r, b, ends)
		edges := pDist.Sample(r) + 1
		for i := 0; i < edges; i++ {
			w := c.pickTerminal(r, ends, c.Gamma, src, b.NumVertices())
			b.AddEdge(src, w)
			ends.Record(int32(w))
		}
	}
	res.Graph = b.FreezeInto(&s.g)
	return res, nil
}

// pickTerminal selects an edge terminal among vertices 1..limit:
// preferential by indegree with probability prefProb, else uniform.
// Draws equal to src are retried when loops are disallowed. The
// preferential draw is a uniform pick from the endpoint array (one
// entry per indegree hit); the seed loop guarantees positive mass, and
// the mass always lies within 1..limit (a New vertex never receives
// indegree during its own arrival), so the out-of-range retry is a
// belt-and-braces guard.
func (c Config) pickTerminal(r *rng.RNG, ends *weights.EndpointArray, prefProb float64, src graph.Vertex, limit int) graph.Vertex {
	const maxRetries = 32
	for attempt := 0; ; attempt++ {
		var w graph.Vertex
		if r.Bernoulli(prefProb) {
			w = graph.Vertex(ends.Sample(r))
			if int(w) > limit {
				continue
			}
		} else {
			w = graph.Vertex(r.IntRange(1, limit))
		}
		if c.AllowLoops || w != src || limit == 1 {
			return w
		}
		if attempt >= maxRetries {
			// Deterministic fallback: uniform over the non-source
			// vertices in range.
			w = graph.Vertex(r.IntRange(1, limit-1))
			if w >= src {
				w++
			}
			return w
		}
	}
}

// pickOldSource selects the emitting vertex of an Old step: uniform
// with probability Delta, preferential by indegree otherwise.
func (c Config) pickOldSource(r *rng.RNG, b *graph.Builder, ends *weights.EndpointArray) graph.Vertex {
	if r.Bernoulli(c.Delta) || ends.Total() == 0 {
		return graph.Vertex(r.IntRange(1, b.NumVertices()))
	}
	return graph.Vertex(ends.Sample(r))
}

// GenerateFenwick is the historical O(N log N) generator drawing every
// preferential vertex from a Fenwick tree over indegrees. It samples
// exactly the same distribution as Generate and is kept as the
// reference implementation for the sampler ablation and the chi-square
// equivalence test; equal seeds yield different (identically
// distributed) graphs because the samplers consume RNG streams
// differently.
func (c Config) GenerateFenwick(r *rng.RNG) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	qDist, err := outDegreeDist(c.QWeights, "QWeights")
	if err != nil {
		return nil, err
	}
	pDist, err := outDegreeDist(c.PWeights, "PWeights")
	if err != nil {
		return nil, err
	}

	b := graph.NewBuilder(c.N, c.N*4)
	indeg := weights.NewFenwick(c.N)

	b.AddVertex()
	b.AddEdge(1, 1)
	indeg.Add(1, 1)

	res := &Result{ArrivalOutDeg: make([]int, c.N+1)}
	res.ArrivalOutDeg[1] = 1
	for b.NumVertices() < c.N {
		res.Steps++
		mustNew := !c.AllowLoops && b.NumVertices() == 1
		if mustNew || r.Bernoulli(c.Alpha) {
			v := b.AddVertex()
			edges := qDist.Sample(r) + 1
			res.ArrivalOutDeg[v] = edges
			for i := 0; i < edges; i++ {
				w := c.pickTerminalFenwick(r, indeg, c.Beta, v, int(v)-1)
				b.AddEdge(v, w)
				indeg.Add(int(w), 1)
			}
			continue
		}
		res.OldSteps++
		src := c.pickOldSourceFenwick(r, b, indeg)
		edges := pDist.Sample(r) + 1
		for i := 0; i < edges; i++ {
			w := c.pickTerminalFenwick(r, indeg, c.Gamma, src, b.NumVertices())
			b.AddEdge(src, w)
			indeg.Add(int(w), 1)
		}
	}
	res.Graph = b.Freeze()
	return res, nil
}

// pickTerminalFenwick is pickTerminal on the Fenwick reference sampler.
func (c Config) pickTerminalFenwick(r *rng.RNG, indeg *weights.Fenwick, prefProb float64, src graph.Vertex, limit int) graph.Vertex {
	const maxRetries = 32
	for attempt := 0; ; attempt++ {
		var w graph.Vertex
		if r.Bernoulli(prefProb) && indeg.PrefixSum(limit) > 0 {
			w = graph.Vertex(indeg.Sample(r))
			if int(w) > limit {
				continue
			}
		} else {
			w = graph.Vertex(r.IntRange(1, limit))
		}
		if c.AllowLoops || w != src || limit == 1 {
			return w
		}
		if attempt >= maxRetries {
			w = graph.Vertex(r.IntRange(1, limit-1))
			if w >= src {
				w++
			}
			return w
		}
	}
}

// pickOldSourceFenwick is pickOldSource on the Fenwick reference
// sampler.
func (c Config) pickOldSourceFenwick(r *rng.RNG, b *graph.Builder, indeg *weights.Fenwick) graph.Vertex {
	if r.Bernoulli(c.Delta) || indeg.Total() == 0 {
		return graph.Vertex(r.IntRange(1, b.NumVertices()))
	}
	return graph.Vertex(indeg.Sample(r))
}

func outDegreeDist(ws []float64, name string) (*rng.Discrete, error) {
	if len(ws) == 0 {
		ws = []float64{1}
	}
	d, err := rng.NewDiscrete(ws)
	if err != nil {
		return nil, fmt.Errorf("cooperfrieze: invalid %s: %w", name, err)
	}
	return d, nil
}
