package stats

import (
	"runtime"
	"testing"

	"scalefree/internal/rng"
)

func TestHistogramMerge(t *testing.T) {
	a := HistogramOf([]int{1, 1, 2})
	b := HistogramOf([]int{2, 3})
	a.Merge(b)
	whole := HistogramOf([]int{1, 1, 2, 2, 3})
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %d, want %d", a.Total(), whole.Total())
	}
	for _, v := range whole.Support() {
		if a.Count(v) != whole.Count(v) {
			t.Errorf("merged count(%d) = %d, want %d", v, a.Count(v), whole.Count(v))
		}
	}
}

// TestHistogramOfParallelMatchesSerial: the partitioned build must be
// indistinguishable from HistogramOf — same support, same counts, same
// CCDF — for every worker count, on a sample large enough to actually
// partition (heavy-tailed, like the degree sequences it is built for).
func TestHistogramOfParallelMatchesSerial(t *testing.T) {
	r := rng.New(17)
	xs := make([]int, 1<<16)
	for i := range xs {
		// Rough power-law-ish sample: many small values, rare large ones.
		x := 1
		for r.Float64() < 0.6 && x < 10000 {
			x *= 2
		}
		xs[i] = x + r.Intn(3)
	}
	want := HistogramOf(xs)
	for _, workers := range []int{1, 2, 3, runtime.NumCPU(), 16} {
		got := HistogramOfParallel(xs, workers)
		if got.Total() != want.Total() {
			t.Fatalf("workers=%d: total %d, want %d", workers, got.Total(), want.Total())
		}
		gotSupport, wantSupport := got.Support(), want.Support()
		if len(gotSupport) != len(wantSupport) {
			t.Fatalf("workers=%d: support size %d, want %d", workers, len(gotSupport), len(wantSupport))
		}
		for i, v := range wantSupport {
			if gotSupport[i] != v || got.Count(v) != want.Count(v) {
				t.Fatalf("workers=%d: count(%d) = %d, want %d", workers, v, got.Count(v), want.Count(v))
			}
		}
		gotCCDF, wantCCDF := got.CCDF(), want.CCDF()
		for i := range wantCCDF {
			if gotCCDF[i] != wantCCDF[i] {
				t.Fatalf("workers=%d: CCDF[%d] = %+v, want %+v", workers, i, gotCCDF[i], wantCCDF[i])
			}
		}
	}
}

// Small inputs take the serial path; the result must still be right
// even when workers exceeds the sample size.
func TestHistogramOfParallelSmallInputs(t *testing.T) {
	for _, xs := range [][]int{nil, {7}, {1, 2, 3}} {
		want := HistogramOf(xs)
		got := HistogramOfParallel(xs, 8)
		if got.Total() != want.Total() {
			t.Errorf("len=%d: total %d, want %d", len(xs), got.Total(), want.Total())
		}
		for _, v := range want.Support() {
			if got.Count(v) != want.Count(v) {
				t.Errorf("len=%d: count(%d) = %d, want %d", len(xs), v, got.Count(v), want.Count(v))
			}
		}
	}
}
