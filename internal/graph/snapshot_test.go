package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"scalefree/internal/rng"
)

// snapshotRoundTrip writes g to a file, reopens it, and checks the
// reopened graph is indistinguishable from g across the whole Graph
// API — not just the edge list Equal covers, but incidence lists and
// degree counters, since the snapshot stores those arrays directly.
func snapshotRoundTrip(t *testing.T, g *Graph) *Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := WriteSnapshotFile(path, g); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snap.Close() })
	got := snap.Graph()
	if !Equal(g, got) {
		t.Fatal("snapshot round trip changed the edge list")
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("round-tripped snapshot fails validation: %v", err)
	}
	for v := Vertex(1); v <= Vertex(g.NumVertices()); v++ {
		if g.Degree(v) != got.Degree(v) || g.InDegree(v) != got.InDegree(v) || g.OutDegree(v) != got.OutDegree(v) {
			t.Fatalf("vertex %d degrees changed: (%d,%d,%d) -> (%d,%d,%d)", v,
				g.Degree(v), g.InDegree(v), g.OutDegree(v),
				got.Degree(v), got.InDegree(v), got.OutDegree(v))
		}
		want, have := g.Incident(v), got.Incident(v)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("vertex %d incidence slot %d changed: %+v -> %+v", v, i, want[i], have[i])
			}
		}
	}
	return snap
}

func TestSnapshotRoundTripShapes(t *testing.T) {
	shapes := map[string]func() *Graph{
		"empty": func() *Graph {
			return (&Builder{}).Freeze()
		},
		"isolated vertices only": func() *Graph {
			b := NewBuilder(5, 0)
			b.AddVertices(5)
			return b.Freeze()
		},
		"self-loops and multi-edges": func() *Graph {
			b := NewBuilder(4, 6)
			b.AddVertices(4)
			b.AddEdge(1, 1)
			b.AddEdge(2, 3)
			b.AddEdge(2, 3)
			b.AddEdge(3, 2)
			b.AddEdge(4, 4)
			b.AddEdge(4, 1)
			return b.Freeze()
		},
		"isolated tail vertices": func() *Graph {
			b := NewBuilder(7, 2)
			b.AddVertices(7)
			b.AddEdge(1, 2)
			b.AddEdge(2, 3)
			return b.Freeze()
		},
		"single vertex single loop": func() *Graph {
			b := NewBuilder(1, 1)
			b.AddVertices(1)
			b.AddEdge(1, 1)
			return b.Freeze()
		},
	}
	for name, build := range shapes {
		t.Run(name, func(t *testing.T) {
			snapshotRoundTrip(t, build())
		})
	}
}

// TestSnapshotRoundTripRandom is the property test: random directed
// multigraphs (self-loops, parallel edges, isolated vertices all
// occur) survive the file round trip exactly.
func TestSnapshotRoundTripRandom(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 25; trial++ {
		n := r.IntRange(1, 60)
		m := r.Intn(150)
		b := NewBuilder(n, m)
		b.AddVertices(n)
		for i := 0; i < m; i++ {
			b.AddEdge(Vertex(r.IntRange(1, n)), Vertex(r.IntRange(1, n)))
		}
		snapshotRoundTrip(t, b.Freeze())
	}
}

// TestSnapshotForceCopyFallback exercises the portable decode-copy
// paths — element-wise encoding on write, read-into-memory instead of
// mmap, and per-field decoding of every section on open — which the
// little-endian unix hosts CI runs on never take naturally. The
// fallback must be byte-identical on write and graph-identical on
// read: a snapshot written on a mainstream host opens the same on a
// big-endian or mmap-less one and vice versa.
func TestSnapshotForceCopyFallback(t *testing.T) {
	r := rng.New(11)
	b := NewBuilder(40, 120)
	b.AddVertices(40)
	for i := 0; i < 120; i++ {
		b.AddEdge(Vertex(r.IntRange(1, 40)), Vertex(r.IntRange(1, 40)))
	}
	g := b.Freeze()

	var fast bytes.Buffer
	if err := WriteSnapshot(&fast, g); err != nil {
		t.Fatal(err)
	}
	prev := SetSnapshotForceCopy(true)
	defer SetSnapshotForceCopy(prev)
	var slow bytes.Buffer
	if err := WriteSnapshot(&slow, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.Bytes(), slow.Bytes()) {
		t.Fatal("decode-copy write path produced different bytes than the zero-copy path")
	}

	// Open through the copy path (readFileFallback + element-wise
	// casts) and check the graph is operationally identical.
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := os.WriteFile(path, fast.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("copy-path open failed: %v", err)
	}
	defer snap.Close()
	got := snap.Graph()
	if !Equal(g, got) {
		t.Fatal("copy-path open changed the edge list")
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("copy-path snapshot fails validation: %v", err)
	}
	for v := Vertex(1); v <= Vertex(g.NumVertices()); v++ {
		if g.Degree(v) != got.Degree(v) || g.InDegree(v) != got.InDegree(v) || g.OutDegree(v) != got.OutDegree(v) {
			t.Fatalf("vertex %d degrees differ through copy path", v)
		}
		want, have := g.Incident(v), got.Incident(v)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("vertex %d incidence slot %d differs through copy path: %+v vs %+v", v, i, want[i], have[i])
			}
		}
	}

	// Both open modes agree with each other too.
	SetSnapshotForceCopy(false)
	direct, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if !Equal(direct.Graph(), got) {
		t.Fatal("mmap and copy opens disagree")
	}
}

// TestSnapshotBytesDeterministic: the same graph always encodes to the
// same bytes (padding included), so snapshots can be content-addressed.
func TestSnapshotBytesDeterministic(t *testing.T) {
	r := rng.New(3)
	b := NewBuilder(50, 200)
	b.AddVertices(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(Vertex(r.IntRange(1, 50)), Vertex(r.IntRange(1, 50)))
	}
	g := b.Freeze()
	var one, two bytes.Buffer
	if err := WriteSnapshot(&one, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&two, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("two encodings of the same graph differ")
	}
}

func writeTestSnapshot(t *testing.T) (path string, raw []byte) {
	t.Helper()
	b := NewBuilder(6, 5)
	b.AddVertices(6)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 4)
	path = filepath.Join(t.TempDir(), "g.csr")
	if err := WriteSnapshotFile(path, b.Freeze()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestOpenSnapshotRejectsCorruption(t *testing.T) {
	path, raw := writeTestSnapshot(t)

	corrupt := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		mutated := mutate(append([]byte(nil), raw...))
		bad := filepath.Join(t.TempDir(), "bad.csr")
		if err := os.WriteFile(bad, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if snap, err := OpenSnapshot(bad); err == nil {
			snap.Close()
			t.Fatal("corrupted snapshot accepted")
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { b[0] ^= 0xFF; return b })
	})
	t.Run("bad version", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			binary.LittleEndian.PutUint64(b[32:], fnv1a(b[:32]))
			return b
		})
	})
	t.Run("bad half size", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 16)
			binary.LittleEndian.PutUint64(b[32:], fnv1a(b[:32]))
			return b
		})
	})
	t.Run("checksum mismatch", func(t *testing.T) {
		// Corrupt n without re-stamping the checksum.
		corrupt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 999)
			return b
		})
	})
	t.Run("size fields inconsistent with file size", func(t *testing.T) {
		// Re-stamped checksum, but the sections no longer fit.
		corrupt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 999)
			binary.LittleEndian.PutUint64(b[32:], fnv1a(b[:32]))
			return b
		})
	})
	t.Run("oversized counts", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
			binary.LittleEndian.PutUint64(b[32:], fnv1a(b[:32]))
			return b
		})
	})
	t.Run("truncated header", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:snapshotHeaderSize-1] })
	})
	t.Run("truncated body", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:len(b)-4] })
	})
	t.Run("trailing garbage", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return append(b, 0, 0, 0, 0) })
	})
	t.Run("empty file", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return nil })
	})

	// The pristine file still opens after all that.
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
}

// TestSnapshotValidateCatchesBodyCorruption: header checks cannot see
// body damage; Validate must.
func TestSnapshotValidateCatchesBodyCorruption(t *testing.T) {
	_, raw := writeTestSnapshot(t)
	n, m, err := decodeHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	l := computeLayout(n, m)

	cases := map[string]int64{
		"endpoint out of range": l.fromOff,      // first edge tail -> garbage
		"offsets broken":        l.offOff + 4,   // off[1] nonzero
		"degree counter broken": l.indegOff + 4, // indeg[1] wrong
		"half inconsistent":     l.halvesOff,    // first half's edge id
	}
	for name, off := range cases {
		t.Run(name, func(t *testing.T) {
			mutated := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mutated[off:], 0x7F00BAD)
			bad := filepath.Join(t.TempDir(), "bad.csr")
			if err := os.WriteFile(bad, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			snap, err := OpenSnapshot(bad)
			if err != nil {
				// Header-level rejection is also acceptable.
				return
			}
			defer snap.Close()
			if err := snap.Validate(); err == nil {
				t.Fatal("Validate accepted corrupted body")
			}
		})
	}
}

func TestSnapshotCloseIdempotent(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if snap.Graph() != nil {
		t.Fatal("closed snapshot still serves a graph")
	}
}

// TestSnapshotTraversals: the mmap-backed graph behaves identically
// under the traversal and component passes — the snapshot is not just
// Equal, it is operationally the same graph.
func TestSnapshotTraversals(t *testing.T) {
	r := rng.New(9)
	b := NewBuilder(300, 600)
	b.AddVertices(300)
	for i := 0; i < 600; i++ {
		b.AddEdge(Vertex(r.IntRange(1, 300)), Vertex(r.IntRange(1, 300)))
	}
	g := b.Freeze()
	snap := snapshotRoundTrip(t, g)
	got := snap.Graph()

	for _, src := range []Vertex{1, 7, 300} {
		want, have := BFS(g, src), BFS(got, src)
		for v := range want {
			if want[v] != have[v] {
				t.Fatalf("BFS from %d: dist[%d] = %d on snapshot, want %d", src, v, have[v], want[v])
			}
		}
	}
	wantLabels, wantCount := Components(g)
	haveLabels, haveCount := Components(got)
	if wantCount != haveCount {
		t.Fatalf("component count %d on snapshot, want %d", haveCount, wantCount)
	}
	for v := range wantLabels {
		if wantLabels[v] != haveLabels[v] {
			t.Fatalf("component label of %d: %d on snapshot, want %d", v, haveLabels[v], wantLabels[v])
		}
	}
}
