// Package mori implements the Móri model of scale-free random trees and
// its merged m-out graph variant, the first of the two graph families
// for which the paper proves the Ω(√n) non-searchability lower bound.
//
// The Móri tree G_t starts at time t = 2 with vertices 1, 2 and the
// single edge 2 → 1. At each later time t, vertex t is added with one
// outgoing edge to an older vertex u chosen with probability
// proportional to
//
//	p·d_t(u) + (1 − p),
//
// where d_t(u) is the indegree of u at time t and 0 < p ≤ 1 mixes
// preferential (p) and uniform (1 − p) attachment.
//
// As an extension beyond the paper's parameter range, p = 0 is also
// accepted: the process degenerates to pure uniform attachment (the
// random recursive tree), for which the same equivalence machinery
// applies with P(E_{a,b}) → e^{-1} — experiment E11 measures that the
// Ω(√n) non-searchability carries over, answering the paper's closing
// remark that the technique "seems broad enough to be adapted to other
// models of growing random graphs". The m-out Móri graph
// G^(m)_n is obtained by generating the tree of size n·m and merging
// each block of m consecutive vertices into one, preserving multi-edges
// and self-loops, exactly as the paper defines it.
//
// The implementation samples the mixture exactly: the total attachment
// weight splits as p·E + (1−p)·V with E the total indegree (t−2) and V
// the vertex count (t−1), so the generator flips a coin with the exact
// state-dependent probability and then draws either proportionally to
// indegree (Fenwick tree, O(log n)) or uniformly. Generation of an
// n-vertex tree costs O(n log n).
package mori

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// Tree is a realized Móri tree: Fathers[k] records the destination of
// vertex k's outgoing edge, for 2 <= k <= Size. Fathers[0] and
// Fathers[1] are zero padding; Fathers[2] is always 1.
type Tree struct {
	P       float64
	Fathers []graph.Vertex
}

// GenerateTree draws a Móri tree with size >= 2 vertices and mixing
// parameter 0 < p <= 1.
func GenerateTree(r *rng.RNG, size int, p float64) (*Tree, error) {
	if size < 2 {
		return nil, fmt.Errorf("mori: tree size %d < 2", size)
	}
	if err := validateP(p); err != nil {
		return nil, err
	}
	t := &Tree{P: p, Fathers: make([]graph.Vertex, size+1)}
	t.Fathers[2] = 1
	indeg := weights.NewFenwick(size)
	indeg.Add(1, 1) // the initial edge 2 → 1
	for k := 3; k <= size; k++ {
		// Before inserting vertex k there are k-1 vertices and k-2
		// edges, so the total attachment weight is p(k-2) + (1-p)(k-1).
		prefMass := p * float64(k-2)
		unifMass := (1 - p) * float64(k-1)
		var u graph.Vertex
		if r.Float64()*(prefMass+unifMass) < prefMass {
			u = graph.Vertex(indeg.Sample(r))
		} else {
			u = graph.Vertex(r.IntRange(1, k-1))
		}
		t.Fathers[k] = u
		indeg.Add(int(u), 1)
	}
	return t, nil
}

// Size returns the number of vertices.
func (t *Tree) Size() int { return len(t.Fathers) - 1 }

// Father returns the destination of vertex k's outgoing edge
// (2 <= k <= Size).
func (t *Tree) Father(k graph.Vertex) graph.Vertex {
	return t.Fathers[k]
}

// Graph freezes the tree into a directed graph with edges k → Father(k)
// appended in insertion order k = 2..Size.
func (t *Tree) Graph() *graph.Graph {
	size := t.Size()
	b := graph.NewBuilder(size, size-1)
	b.AddVertices(size)
	for k := 2; k <= size; k++ {
		b.AddEdge(graph.Vertex(k), t.Fathers[k])
	}
	return b.Freeze()
}

// InDegrees replays the tree and returns the indegree of every vertex
// (indexed 1..Size).
func (t *Tree) InDegrees() []int {
	ds := make([]int, t.Size()+1)
	for k := 2; k <= t.Size(); k++ {
		ds[t.Fathers[k]]++
	}
	return ds
}

// Merge produces the m-out Móri graph from a tree whose size is
// divisible by m: tree vertices m(i-1)+1..mi become graph vertex i and
// every tree edge is carried over, so the result has Size/m vertices
// and Size-1 edges, possibly with loops and multi-edges.
func Merge(t *Tree, m int) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("mori: merge factor %d < 1", m)
	}
	size := t.Size()
	if size%m != 0 {
		return nil, fmt.Errorf("mori: tree size %d not divisible by merge factor %d", size, m)
	}
	n := size / m
	b := graph.NewBuilder(n, size-1)
	b.AddVertices(n)
	for k := 2; k <= size; k++ {
		b.AddEdge(mergedID(graph.Vertex(k), m), mergedID(t.Fathers[k], m))
	}
	return b.Freeze(), nil
}

// mergedID maps tree vertex v to its block identity under merge factor m.
func mergedID(v graph.Vertex, m int) graph.Vertex {
	return (v + graph.Vertex(m) - 1) / graph.Vertex(m)
}

// Config describes a merged Móri graph G^(m)_N.
type Config struct {
	N int     // merged graph size (number of vertices), >= 2
	M int     // merge factor m >= 1; 1 yields the plain tree
	P float64 // preferential mixing, 0 < p <= 1
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("mori: N = %d < 2", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("mori: M = %d < 1", c.M)
	}
	return validateP(c.P)
}

// String implements fmt.Stringer for bench and log labels.
func (c Config) String() string {
	return fmt.Sprintf("mori(n=%d,m=%d,p=%g)", c.N, c.M, c.P)
}

// Generate draws the merged Móri graph: a tree of size N·M merged with
// factor M.
func (c Config) Generate(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t, err := GenerateTree(r, c.N*c.M, c.P)
	if err != nil {
		return nil, err
	}
	return Merge(t, c.M)
}

func validateP(p float64) error {
	// p = 0 (pure uniform attachment) is accepted as a documented
	// extension; the paper's theorems cover 0 < p <= 1.
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("mori: p = %v out of [0, 1]", p)
	}
	return nil
}

// TreeLogProb returns the exact log-probability that GenerateTree
// produces exactly the given father assignment under mixing parameter
// p. Fathers must be a valid increasing assignment (father(k) < k); the
// function replays the attachment weights step by step.
func TreeLogProb(fathers []graph.Vertex, p float64) (float64, error) {
	size := len(fathers) - 1
	if size < 2 {
		return 0, fmt.Errorf("mori: father array for size %d < 2", size)
	}
	if err := validateP(p); err != nil {
		return 0, err
	}
	if fathers[2] != 1 {
		return 0, fmt.Errorf("mori: fathers[2] = %d, must be 1", fathers[2])
	}
	indeg := make([]int, size+1)
	indeg[1] = 1
	logProb := 0.0
	for k := 3; k <= size; k++ {
		u := fathers[k]
		if u < 1 || int(u) >= k {
			return 0, fmt.Errorf("mori: fathers[%d] = %d violates father < child", k, u)
		}
		num := p*float64(indeg[u]) + (1 - p)
		den := p*float64(k-2) + (1-p)*float64(k-1)
		logProb += math.Log(num / den)
		indeg[u]++
	}
	return logProb, nil
}

// TreeProb is TreeLogProb exponentiated; it underflows for large trees,
// so use it only on small instances (enumeration tests).
func TreeProb(fathers []graph.Vertex, p float64) (float64, error) {
	lp, err := TreeLogProb(fathers, p)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// EnumerateTrees visits every possible father assignment of a Móri tree
// with the given size, in lexicographic order. The callback receives a
// reused slice that it must not retain. The number of assignments is
// (size-1)!, so this is intended for size <= 10.
func EnumerateTrees(size int, visit func(fathers []graph.Vertex)) error {
	if size < 2 {
		return fmt.Errorf("mori: cannot enumerate trees of size %d < 2", size)
	}
	fathers := make([]graph.Vertex, size+1)
	fathers[2] = 1
	var rec func(k int)
	rec = func(k int) {
		if k > size {
			visit(fathers)
			return
		}
		for u := 1; u < k; u++ {
			fathers[k] = graph.Vertex(u)
			rec(k + 1)
		}
	}
	rec(3)
	return nil
}
