package cooperfrieze

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

func TestArrivalOutDegConsistency(t *testing.T) {
	// Every vertex's final out-degree is its arrival out-degree plus
	// any Old-step emissions, so arrival <= final and the totals square
	// with the edge count.
	cfg := defaultConfig(600)
	cfg.Alpha = 0.6
	res, err := cfg.Generate(rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	arrivalTotal := 0
	for v := graph.Vertex(1); int(v) <= 600; v++ {
		arr := res.ArrivalOutDeg[v]
		if arr < 1 {
			t.Fatalf("vertex %d arrived with %d edges", v, arr)
		}
		if got := g.OutDegree(v); got < arr {
			t.Fatalf("vertex %d: final out-degree %d below arrival %d", v, got, arr)
		}
		arrivalTotal += arr
	}
	oldEdges := g.NumEdges() - arrivalTotal
	if oldEdges < 0 {
		t.Fatalf("arrival edges %d exceed total %d", arrivalTotal, g.NumEdges())
	}
	// With unit out-degree distributions, Old steps emit exactly one
	// edge each.
	if oldEdges != res.OldSteps {
		t.Errorf("old edges %d != old steps %d", oldEdges, res.OldSteps)
	}
}

func TestArrivalOutDegMatchesQDistribution(t *testing.T) {
	cfg := defaultConfig(400)
	cfg.Alpha = 1
	cfg.QWeights = []float64{0, 1} // always two edges
	res, err := cfg.Generate(rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 400; v++ {
		if res.ArrivalOutDeg[v] != 2 {
			t.Fatalf("vertex %d arrival out-degree %d, want 2", v, res.ArrivalOutDeg[v])
		}
	}
	if res.ArrivalOutDeg[1] != 1 {
		t.Errorf("seed arrival out-degree %d, want 1 (the loop)", res.ArrivalOutDeg[1])
	}
}
