package sweep

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Shared-key HMAC challenge–response authentication for the SFCOORD3
// handshake (wire.go has the message flow). Both sides prove
// possession of the key without ever sending it: each issues a random
// nonce and verifies HMAC-SHA256(key, role-label ‖ peer-nonce) from
// the other side. The role labels make the two proofs non-mutable — a
// coordinator's proof replayed back at it does not authenticate a
// worker. This authenticates peers on a shared network segment; it
// does not encrypt the stream (TLS remains a ROADMAP item).

const (
	authNonceLen = 16 // bytes of entropy per nonce, hex on the wire
	// Role labels folded into each proof so the two directions can
	// never be confused or replayed across roles.
	authCoordLabel  = "SFCOORD3:coordinator:"
	authWorkerLabel = "SFCOORD3:worker:"
)

// newAuthNonce draws a fresh random nonce, hex-encoded for the wire.
func newAuthNonce() (string, error) {
	var b [authNonceLen]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("sweep: auth nonce: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// authProof computes the hex HMAC-SHA256 proof for one direction:
// label identifies the prover's role, nonceHex is the peer's
// challenge.
func authProof(key []byte, label, nonceHex string) string {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(label))
	mac.Write([]byte(nonceHex))
	return hex.EncodeToString(mac.Sum(nil))
}

// verifyAuthProof checks a peer's proof in constant time.
func verifyAuthProof(key []byte, label, nonceHex, proofHex string) bool {
	return hmac.Equal([]byte(authProof(key, label, nonceHex)), []byte(proofHex))
}
